//! The wire protocol: length-prefixed JSON frames and request decoding.
//!
//! A frame is a 4-byte **big-endian** `u32` payload length followed by
//! that many bytes of UTF-8 JSON (the dependency-free [`crate::json`]
//! dialect — no NaN/Infinity, objects with string keys). Length-prefixing
//! over a byte stream avoids any in-band delimiter scanning and makes torn
//! frames (a peer dying mid-write) a *detected error* rather than a parse
//! ambiguity: a clean EOF is only clean on a frame boundary.
//!
//! Every request is one JSON object with an `"op"` field; every response
//! is `{"ok": true, "result": …}` or `{"ok": false, "error": {"kind": …,
//! "message": …}}`. The full grammar is documented in
//! `docs/serve-protocol.md`.

use std::io::{self, Read, Write};
use std::str::FromStr;

use cmp_platform::{CoreId, Platform, RoutePolicy, Topology, TopologyKind};
use spg::generate::families::{FamilyKind, FamilyParams, WorkloadSpec};
use spg::{Spg, STREAMIT_SPECS};

use crate::common::Failure;
use crate::json::{obj, Json};

/// Hard cap on a frame payload; anything larger is a protocol error, not a
/// memory commitment.
pub const MAX_FRAME_BYTES: usize = 16 << 20;

/// Writes one frame (length prefix + serialized JSON) and flushes.
pub fn write_frame<W: Write>(w: &mut W, msg: &Json) -> io::Result<()> {
    let body = msg.to_string();
    if body.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "frame of {} bytes exceeds the {MAX_FRAME_BYTES}-byte cap",
                body.len()
            ),
        ));
    }
    // One buffer, one write: a short prefix write followed by a short
    // body write is the classic Nagle + delayed-ACK stall on TCP
    // transports — coalescing keeps each frame to a single segment.
    let mut wire = Vec::with_capacity(4 + body.len());
    wire.extend_from_slice(&(body.len() as u32).to_be_bytes());
    wire.extend_from_slice(body.as_bytes());
    w.write_all(&wire)?;
    w.flush()
}

/// Reads one frame from a **blocking** stream. `Ok(None)` means the peer
/// closed the stream cleanly *on a frame boundary*; EOF anywhere else is
/// a torn frame and surfaces as [`io::ErrorKind::UnexpectedEof`].
/// Oversized lengths and invalid JSON surface as
/// [`io::ErrorKind::InvalidData`].
///
/// On a stream with a read timeout this restarts from scratch each call,
/// so a `WouldBlock`/`TimedOut` mid-frame would *discard* already-consumed
/// bytes and desynchronise the framing. Timeout-polling loops must hold a
/// persistent [`FrameReader`] instead.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Json>> {
    FrameReader::new().poll(r)
}

/// Incremental frame reader that survives read timeouts.
///
/// Partial progress — however much of the length prefix and body has
/// arrived — is held in the reader across calls, so a
/// `WouldBlock`/`TimedOut` simply propagates while the next
/// [`FrameReader::poll`] resumes exactly where the stream paused. This is
/// what lets a connection loop poll a shutdown flag between frames
/// without corrupting a frame whose peer pauses mid-write (normal for
/// large frames over TCP).
#[derive(Debug, Default)]
pub struct FrameReader {
    len_buf: [u8; 4],
    len_got: usize,
    body: Vec<u8>,
    body_got: usize,
}

impl FrameReader {
    /// A reader with no frame in progress.
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Whether part of an unfinished frame has been consumed. While true,
    /// a read timeout means "the peer paused mid-frame", not "the
    /// connection is idle".
    pub fn mid_frame(&self) -> bool {
        self.len_got > 0
    }

    /// Drives the current frame forward, returning it once complete. Same
    /// result semantics as [`read_frame`]; additionally,
    /// `WouldBlock`/`TimedOut` errors pass through with all progress
    /// intact for the next call.
    pub fn poll<R: Read>(&mut self, r: &mut R) -> io::Result<Option<Json>> {
        while self.len_got < 4 {
            // First byte decides clean-EOF vs torn frame.
            match r.read(&mut self.len_buf[self.len_got..]) {
                Ok(0) if self.len_got == 0 => return Ok(None),
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "peer closed mid-frame (torn length prefix)",
                    ))
                }
                Ok(n) => self.len_got += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
            if self.len_got == 4 {
                let len = u32::from_be_bytes(self.len_buf) as usize;
                if len > MAX_FRAME_BYTES {
                    *self = FrameReader::new();
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("frame length {len} exceeds the {MAX_FRAME_BYTES}-byte cap"),
                    ));
                }
                self.body = vec![0u8; len];
                self.body_got = 0;
            }
        }
        while self.body_got < self.body.len() {
            match r.read(&mut self.body[self.body_got..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "peer closed mid-frame (torn body)",
                    ))
                }
                Ok(n) => self.body_got += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        let body = std::mem::take(&mut self.body);
        *self = FrameReader::new();
        let text = std::str::from_utf8(&body).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame is not UTF-8: {e}"),
            )
        })?;
        Json::parse(text).map(Some).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame is not valid JSON: {e}"),
            )
        })
    }
}

/// How a request names its workload.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadReq {
    /// One of the 12 Table-1 StreamIt workflows, by name
    /// (case-insensitive), instantiated at a seed.
    Streamit {
        /// Workflow name as printed in Table 1 (e.g. `"Beamformer"`).
        name: String,
        /// Instantiation seed (the suite default is 2011).
        seed: u64,
    },
    /// A synthetic family member (`spg::generate`).
    Family {
        /// Which family.
        family: FamilyKind,
        /// Exact stage count.
        n: usize,
        /// Generator seed.
        seed: u64,
    },
    /// An inline pipeline: `weights.len()` stages, `weights.len() - 1`
    /// edges.
    Chain {
        /// Stage weights in cycles per data set.
        weights: Vec<f64>,
        /// Edge volumes in bytes per data set.
        volumes: Vec<f64>,
    },
}

impl WorkloadReq {
    /// Decodes the `"workload"` member of a request.
    pub fn from_json(v: &Json) -> Result<WorkloadReq, String> {
        if let Some(name) = v.get("streamit").and_then(Json::as_str) {
            let seed = opt_u64(v, "seed")?.unwrap_or(2011);
            return Ok(WorkloadReq::Streamit {
                name: name.to_string(),
                seed,
            });
        }
        if let Some(fam) = v.get("family").and_then(Json::as_str) {
            let family = FamilyKind::from_str(fam)?;
            let n = req_u64(v, "n")? as usize;
            let seed = opt_u64(v, "seed")?.unwrap_or(0);
            if n < 2 {
                return Err(format!("family workloads need n >= 2, got {n}"));
            }
            return Ok(WorkloadReq::Family { family, n, seed });
        }
        if let Some(c) = v.get("chain") {
            let weights = f64_array(c, "weights")?;
            let volumes = f64_array(c, "volumes")?;
            if weights.is_empty() || volumes.len() + 1 != weights.len() {
                return Err(format!(
                    "a chain of {} stages needs exactly {} volumes, got {}",
                    weights.len(),
                    weights.len().saturating_sub(1),
                    volumes.len()
                ));
            }
            return Ok(WorkloadReq::Chain { weights, volumes });
        }
        Err("workload must name one of \"streamit\", \"family\", or \"chain\"".to_string())
    }

    /// Builds the SPG. Deterministic: the same request always produces the
    /// same graph (and therefore the same fingerprint).
    pub fn instantiate(&self) -> Result<Spg, String> {
        match self {
            WorkloadReq::Streamit { name, seed } => {
                let spec = STREAMIT_SPECS
                    .iter()
                    .find(|s| s.name.eq_ignore_ascii_case(name))
                    .ok_or_else(|| format!("unknown StreamIt workflow '{name}'"))?;
                Ok(spg::streamit::streamit_workflow(spec, *seed))
            }
            WorkloadReq::Family { family, n, seed } => {
                Ok(WorkloadSpec::new(*family, FamilyParams::sized(*n), *seed).instantiate())
            }
            WorkloadReq::Chain { weights, volumes } => Ok(spg::chain(weights, volumes)),
        }
    }

    /// Short human-readable tag (logs, responses).
    pub fn describe(&self) -> String {
        match self {
            WorkloadReq::Streamit { name, .. } => format!("streamit:{name}"),
            WorkloadReq::Family { family, n, seed } => {
                format!("{}:n{n}:s{seed}", family.name())
            }
            WorkloadReq::Chain { weights, .. } => format!("chain:n{}", weights.len()),
        }
    }
}

/// The `"platform"` member of a request. Absent fields default to the
/// paper's 4×4 mesh with XY routing. The optional `"faults"` member
/// injects dead cores (`"cores": [[u,v], …]`) and dead links
/// (`"links": [[u1,v1,u2,v2], …]`, endpoints topology-adjacent); see
/// `docs/fault-model.md` for the semantics.
pub fn platform_from_json(v: Option<&Json>) -> Result<Platform, String> {
    let Some(v) = v else {
        return Ok(Platform::paper(4, 4));
    };
    let p = opt_u64(v, "p")?.unwrap_or(4) as u32;
    let q = opt_u64(v, "q")?.unwrap_or(4) as u32;
    if p == 0 || q == 0 {
        return Err("platform dimensions must be positive".to_string());
    }
    let topology = match v.get("topology").and_then(Json::as_str) {
        Some(s) => TopologyKind::from_str(s)?,
        None => TopologyKind::Mesh,
    };
    let mut pf = Platform::paper_topology(topology, p, q);
    if let Some(s) = v.get("routing").and_then(Json::as_str) {
        pf = pf.with_policy(RoutePolicy::from_str(s)?);
    }
    if let Some(f) = v.get("faults") {
        pf = apply_faults(pf, f)?;
    }
    Ok(pf)
}

/// Decodes one core coordinate out of a faults array entry.
fn core_at(pf: &Platform, coords: &[Json], at: usize, what: &str) -> Result<CoreId, String> {
    let grab = |i: usize| -> Result<u32, String> {
        coords
            .get(i)
            .and_then(Json::as_f64)
            .filter(|x| *x >= 0.0 && x.fract() == 0.0 && *x <= u32::MAX as f64)
            .map(|x| x as u32)
            .ok_or_else(|| format!("{what} coordinates must be non-negative integers"))
    };
    let c = CoreId {
        u: grab(at)?,
        v: grab(at + 1)?,
    };
    if !pf.contains(c) {
        return Err(format!(
            "{what} core ({}, {}) is off the {}x{} grid",
            c.u, c.v, pf.p, pf.q
        ));
    }
    Ok(c)
}

/// Applies a request's `"faults"` member to a platform, validating every
/// coordinate (the library fault constructors panic on bad input; the
/// wire layer must reject it as a `bad_request` instead).
fn apply_faults(mut pf: Platform, f: &Json) -> Result<Platform, String> {
    if let Some(cores) = f.get("cores") {
        let cores = cores
            .as_arr()
            .ok_or("\"faults.cores\" must be an array of [u, v] pairs")?;
        for entry in cores {
            let pair = entry
                .as_arr()
                .filter(|a| a.len() == 2)
                .ok_or("each dead core must be a [u, v] pair")?;
            let c = core_at(&pf, pair, 0, "dead")?;
            pf = pf.with_core_fault(c);
        }
    }
    if let Some(links) = f.get("links") {
        let links = links
            .as_arr()
            .ok_or("\"faults.links\" must be an array of [u1, v1, u2, v2] quads")?;
        for entry in links {
            let quad = entry
                .as_arr()
                .filter(|a| a.len() == 4)
                .ok_or("each dead link must be a [u1, v1, u2, v2] quad")?;
            let a = core_at(&pf, quad, 0, "dead-link")?;
            let b = core_at(&pf, quad, 2, "dead-link")?;
            let topo = pf.topo();
            let adjacent = (0..4).any(|dir| topo.step(a, dir) == Some(b));
            if !adjacent {
                return Err(format!(
                    "dead link ({}, {})-({}, {}) does not join topology-adjacent cores",
                    a.u, a.v, b.u, b.v
                ));
            }
            pf = pf.with_link_fault(a, b);
        }
    }
    if pf.n_alive_cores() == 0 {
        return Err("faults leave no alive core".to_string());
    }
    Ok(pf)
}

/// The period bound: explicit seconds, or a platform utilisation in
/// `(0, 1]` resolved to `T = W / (u · p·q · f_max)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PeriodReq {
    /// Explicit period bound in seconds.
    Period(f64),
    /// Platform utilisation in `(0, 1]`.
    Utilisation(f64),
}

impl PeriodReq {
    /// Decodes the `"period"` / `"utilisation"` members (exactly one must
    /// be present and positive).
    pub fn from_json(v: &Json) -> Result<PeriodReq, String> {
        match (
            v.get("period").and_then(Json::as_f64),
            v.get("utilisation").and_then(Json::as_f64),
        ) {
            (Some(t), None) if t > 0.0 => Ok(PeriodReq::Period(t)),
            (None, Some(u)) if u > 0.0 && u <= 1.0 => Ok(PeriodReq::Utilisation(u)),
            (Some(_), Some(_)) => Err("give either \"period\" or \"utilisation\", not both".into()),
            (Some(_), None) => Err("\"period\" must be positive".into()),
            (None, Some(_)) => Err("\"utilisation\" must be in (0, 1]".into()),
            (None, None) => Err("a solve needs a \"period\" or a \"utilisation\"".into()),
        }
    }
}

/// A decoded `solve` request.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveReq {
    /// The workload.
    pub workload: WorkloadReq,
    /// The platform.
    pub platform: Platform,
    /// The period bound.
    pub period: PeriodReq,
    /// Solver list as a registry CSV (`None` = the paper's five
    /// heuristics).
    pub solvers: Option<String>,
    /// Portfolio base seed.
    pub seed: Option<u64>,
    /// Per-request wall-clock budget override in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Anytime mode: a deadline-starved portfolio returns its rescue
    /// mapping with a certified bound gap instead of `too_expensive`
    /// (see [`crate::Portfolio::anytime`]).
    pub anytime: bool,
}

/// A decoded `sweep` request: a `solve` at every grid value.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReq {
    /// The workload.
    pub workload: WorkloadReq,
    /// The platform.
    pub platform: Platform,
    /// `"period"` or `"utilisation"`: what `values` enumerates.
    pub over_utilisation: bool,
    /// The grid values.
    pub values: Vec<f64>,
    /// Solver CSV (`None` = heuristics).
    pub solvers: Option<String>,
    /// Sweep base seed.
    pub seed: Option<u64>,
    /// Per-request wall-clock budget override in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Anytime mode, as on [`SolveReq::anytime`].
    pub anytime: bool,
}

/// One decoded request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Counter/histogram snapshot.
    Stats,
    /// Stop accepting, drain in-flight work, exit.
    Shutdown,
    /// One portfolio solve.
    Solve(SolveReq),
    /// A period/utilisation sweep.
    Sweep(SweepReq),
}

/// Decodes a request frame. All errors are `bad_request` material: the
/// message is safe (and meant) to echo back to the client.
pub fn parse_request(v: &Json) -> Result<Request, String> {
    let op = v
        .get("op")
        .and_then(Json::as_str)
        .ok_or("request must carry a string \"op\"")?;
    match op {
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        "solve" => {
            let workload =
                WorkloadReq::from_json(v.get("workload").ok_or("solve needs a \"workload\"")?)?;
            Ok(Request::Solve(SolveReq {
                workload,
                platform: platform_from_json(v.get("platform"))?,
                period: PeriodReq::from_json(v)?,
                solvers: v.get("solvers").and_then(Json::as_str).map(String::from),
                seed: opt_u64(v, "seed")?,
                deadline_ms: opt_u64(v, "deadline_ms")?,
                anytime: opt_bool(v, "anytime")?.unwrap_or(false),
            }))
        }
        "sweep" => {
            let workload =
                WorkloadReq::from_json(v.get("workload").ok_or("sweep needs a \"workload\"")?)?;
            let over_utilisation = match v.get("axis").and_then(Json::as_str) {
                Some("utilisation") | None => true,
                Some("period") => false,
                Some(other) => {
                    return Err(format!(
                        "unknown axis '{other}' (expected \"period\" or \"utilisation\")"
                    ))
                }
            };
            let values = f64_array(v, "values")?;
            if values.is_empty() {
                return Err("sweep needs at least one grid value".to_string());
            }
            if values
                .iter()
                .any(|&x| x <= 0.0 || (over_utilisation && x > 1.0))
            {
                return Err("sweep values must be positive (and <= 1 for utilisation)".to_string());
            }
            Ok(Request::Sweep(SweepReq {
                workload,
                platform: platform_from_json(v.get("platform"))?,
                over_utilisation,
                values,
                solvers: v.get("solvers").and_then(Json::as_str).map(String::from),
                seed: opt_u64(v, "seed")?,
                deadline_ms: opt_u64(v, "deadline_ms")?,
                anytime: opt_bool(v, "anytime")?.unwrap_or(false),
            }))
        }
        other => Err(format!(
            "unknown op '{other}' (expected ping, stats, shutdown, solve, or sweep)"
        )),
    }
}

/// Wraps a result payload as a success frame.
pub fn ok_response(result: Json) -> Json {
    obj([("ok", Json::from(true)), ("result", result)])
}

/// Builds an error frame with a stable `kind` tag.
pub fn error_response(kind: &str, message: &str) -> Json {
    obj([
        ("ok", Json::from(false)),
        (
            "error",
            obj([("kind", Json::from(kind)), ("message", Json::from(message))]),
        ),
    ])
}

/// Builds the `overloaded` error frame admission control sheds with: the
/// predicted queue wait that triggered the shed, the depth of the queue at
/// decision time, and a `retry_after_ms` hint (the predicted wait, rounded
/// up to at least one millisecond) telling the client when capacity is
/// likely to exist again.
pub fn overloaded_response(predicted_wait_ns: u64, queue_depth: u64) -> Json {
    let retry_after_ms = predicted_wait_ns.div_ceil(1_000_000).max(1);
    let message = format!(
        "shed by admission control: predicted queue wait {:.3} ms exceeds the request deadline or the queue is full",
        predicted_wait_ns as f64 / 1e6
    );
    obj([
        ("ok", Json::from(false)),
        (
            "error",
            obj([
                ("kind", Json::from("overloaded")),
                ("message", Json::from(message.as_str())),
                ("retry_after_ms", Json::from(retry_after_ms)),
                (
                    "predicted_wait_ms",
                    Json::from(predicted_wait_ns as f64 / 1e6),
                ),
                ("queue_depth", Json::from(queue_depth)),
            ]),
        ),
    ])
}

/// Maps a solver [`Failure`] to its structured error frame. Budget
/// exhaustion keeps its phase/cap/count telemetry so clients can
/// distinguish a deadline miss from a complexity cap.
pub fn failure_response(f: &Failure) -> Json {
    match f {
        Failure::TooExpensive(b) => obj([
            ("ok", Json::from(false)),
            (
                "error",
                obj([
                    ("kind", Json::from("too_expensive")),
                    ("message", Json::from(f.to_string())),
                    ("phase", Json::from(b.phase.name())),
                    ("cap", Json::from(b.cap)),
                    ("count", Json::from(b.count)),
                ]),
            ),
        ]),
        other => obj([
            ("ok", Json::from(false)),
            (
                "error",
                obj([
                    ("kind", Json::from("no_valid_mapping")),
                    ("message", Json::from(other.to_string())),
                ]),
            ),
        ]),
    }
}

fn opt_u64(v: &Json, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None => Ok(None),
        Some(j) => match j.as_f64() {
            Some(x) if x >= 0.0 && x.fract() == 0.0 && x <= u64::MAX as f64 => Ok(Some(x as u64)),
            _ => Err(format!("\"{key}\" must be a non-negative integer")),
        },
    }
}

fn opt_bool(v: &Json, key: &str) -> Result<Option<bool>, String> {
    match v.get(key) {
        None => Ok(None),
        Some(j) => j
            .as_bool()
            .map(Some)
            .ok_or_else(|| format!("\"{key}\" must be a boolean")),
    }
}

fn req_u64(v: &Json, key: &str) -> Result<u64, String> {
    opt_u64(v, key)?.ok_or_else(|| format!("missing required field \"{key}\""))
}

fn f64_array(v: &Json, key: &str) -> Result<Vec<f64>, String> {
    let arr = v
        .get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("\"{key}\" must be an array of numbers"))?;
    arr.iter()
        .map(|x| {
            x.as_f64()
                .ok_or_else(|| format!("\"{key}\" must contain only numbers"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(text: &str) -> Result<Request, String> {
        parse_request(&Json::parse(text).unwrap())
    }

    #[test]
    fn frames_roundtrip() {
        let msg = obj([("op", Json::from("ping")), ("x", Json::from(1.5))]);
        let mut buf = Vec::new();
        write_frame(&mut buf, &msg).unwrap();
        write_frame(&mut buf, &Json::from("second")).unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap(), Some(msg));
        assert_eq!(read_frame(&mut r).unwrap(), Some(Json::from("second")));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF on boundary");
    }

    #[test]
    fn torn_frames_are_detected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Json::from("payload")).unwrap();
        for cut in 1..buf.len() {
            let err = read_frame(&mut Cursor::new(&buf[..cut])).unwrap_err();
            assert_eq!(
                err.kind(),
                io::ErrorKind::UnexpectedEof,
                "truncation at byte {cut} must be a torn frame"
            );
        }
    }

    /// Yields at most one byte per read and a `WouldBlock` before every
    /// byte — the worst-case slow peer over a stream with a read timeout.
    struct Dribble<'a> {
        data: &'a [u8],
        pos: usize,
        ready: bool,
    }

    impl Read for Dribble<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if !self.ready {
                self.ready = true;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "stalled"));
            }
            self.ready = false;
            let n = 1.min(buf.len()).min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn frame_reader_preserves_progress_across_timeouts() {
        let first = obj([("op", Json::from("ping"))]);
        let mut buf = Vec::new();
        write_frame(&mut buf, &first).unwrap();
        write_frame(&mut buf, &Json::from("second")).unwrap();
        let mut stream = Dribble {
            data: &buf,
            pos: 0,
            ready: false,
        };
        let mut reader = FrameReader::new();
        let mut frames = Vec::new();
        let mut stalls = 0usize;
        loop {
            match reader.poll(&mut stream) {
                Ok(Some(frame)) => frames.push(frame),
                Ok(None) => break,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    stalls += 1;
                    assert!(
                        stalls <= 2 * buf.len() + 2,
                        "reader must make progress between stalls"
                    );
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(frames, vec![first, Json::from("second")]);
        assert!(stalls > 8, "the dribble stream must actually have stalled");
        assert!(!reader.mid_frame(), "clean EOF leaves no frame in progress");
    }

    #[test]
    fn oversized_and_garbage_frames_are_invalid_data() {
        let mut buf = Vec::from((MAX_FRAME_BYTES as u32 + 1).to_be_bytes());
        buf.extend_from_slice(b"xxxx");
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        let mut buf = Vec::new();
        buf.extend_from_slice(&4u32.to_be_bytes());
        buf.extend_from_slice(b"{{{{");
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn parses_solve_request() {
        let req = parse(
            r#"{"op":"solve","workload":{"streamit":"Beamformer"},
                "platform":{"p":4,"q":4,"topology":"mesh","routing":"xy"},
                "utilisation":0.5,"solvers":"greedy,dpa1d","seed":7,"deadline_ms":200}"#,
        )
        .unwrap();
        let Request::Solve(s) = req else {
            panic!("expected solve")
        };
        assert_eq!(s.workload.describe(), "streamit:Beamformer");
        assert_eq!(s.period, PeriodReq::Utilisation(0.5));
        assert_eq!(s.solvers.as_deref(), Some("greedy,dpa1d"));
        assert_eq!(s.deadline_ms, Some(200));
        assert_eq!((s.platform.p, s.platform.q), (4, 4));
        let g = s.workload.instantiate().unwrap();
        assert_eq!(g.n(), 57, "Beamformer has 57 stages (Table 1)");
    }

    #[test]
    fn parses_faults_and_anytime() {
        let req = parse(
            r#"{"op":"solve","workload":{"streamit":"FFT"},
                "platform":{"p":3,"q":3,"faults":{"cores":[[1,1]],"links":[[0,0,0,1]]}},
                "utilisation":0.5,"anytime":true}"#,
        )
        .unwrap();
        let Request::Solve(s) = req else {
            panic!("expected solve")
        };
        assert!(s.anytime);
        assert!(s.platform.is_faulted());
        assert!(s.platform.has_link_faults());
        assert_eq!(s.platform.n_alive_cores(), 8);
        // Torus wrap links are adjacent there but not on a mesh.
        assert!(parse(
            r#"{"op":"solve","workload":{"streamit":"FFT"},
                "platform":{"p":3,"q":3,"faults":{"links":[[0,0,0,2]]}},"period":1}"#
        )
        .is_err());
        assert!(parse(
            r#"{"op":"solve","workload":{"streamit":"FFT"},
                "platform":{"p":3,"q":3,"topology":"torus","faults":{"links":[[0,0,0,2]]}},"period":1}"#
        )
        .is_ok());
        assert!(parse(
            r#"{"op":"solve","workload":{"streamit":"FFT"},"period":1,"anytime":"yes"}"#
        )
        .is_err());
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(parse(r#"{"op":"solve"}"#).is_err());
        assert!(parse(r#"{"op":"nope"}"#).is_err());
        assert!(parse(r#"{"nop":"ping"}"#).is_err());
        assert!(
            parse(r#"{"op":"solve","workload":{"streamit":"Beamformer"}}"#)
                .unwrap_err()
                .contains("period")
        );
        assert!(parse(
            r#"{"op":"solve","workload":{"streamit":"Beamformer"},"period":1.0,"utilisation":0.5}"#
        )
        .is_err());
        assert!(parse(
            r#"{"op":"solve","workload":{"chain":{"weights":[1.0,2.0],"volumes":[1.0,2.0]}},"period":1}"#
        )
        .unwrap_err()
        .contains("volumes"));
        assert!(parse(
            r#"{"op":"solve","workload":{"streamit":"Beamformer"},"period":1,"deadline_ms":-5}"#
        )
        .is_err());
        assert!(parse(r#"{"op":"sweep","workload":{"streamit":"FFT"},"values":[]}"#).is_err());
        assert!(
            parse(r#"{"op":"sweep","workload":{"streamit":"FFT"},"values":[0.2,1.5]}"#).is_err(),
            "utilisation grid values above 1 are rejected"
        );
    }

    #[test]
    fn workload_instantiation_is_deterministic() {
        let w = WorkloadReq::Family {
            family: FamilyKind::WideForkJoin,
            n: 24,
            seed: 3,
        };
        let a = w.instantiate().unwrap();
        let b = w.instantiate().unwrap();
        assert_eq!(a.weights(), b.weights());
        assert_eq!(a.n(), 24);
        let unknown = WorkloadReq::Streamit {
            name: "NotAFlow".into(),
            seed: 0,
        };
        assert!(unknown.instantiate().is_err());
    }

    #[test]
    fn failure_responses_carry_budget_telemetry() {
        use crate::common::{BudgetExceeded, BudgetPhase};
        let f = Failure::TooExpensive(BudgetExceeded {
            phase: BudgetPhase::Deadline,
            cap: 0,
            count: 0,
        });
        let r = failure_response(&f);
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(false));
        let e = r.get("error").unwrap();
        assert_eq!(e.get("kind").and_then(Json::as_str), Some("too_expensive"));
        assert_eq!(e.get("phase").and_then(Json::as_str), Some("deadline"));
        let f = Failure::NoValidMapping("tight".into());
        let e2 = failure_response(&f);
        assert_eq!(
            e2.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str),
            Some("no_valid_mapping")
        );
    }
}
