//! Log-bucketed latency histogram for the daemon's `stats` endpoint.
//!
//! Request latencies span five orders of magnitude (a warm ping is
//! microseconds, a cold `DPA1D` solve on Filterbank is tens of
//! milliseconds), so a linear histogram would either blur the fast end or
//! explode in buckets. This histogram keeps 16 sub-buckets per power of
//! two — ≤ 6.25 % relative quantisation error — in a flat `Vec<u64>`,
//! recording in O(1) with no allocation. Percentile queries locate the
//! bucket holding the requested rank and **interpolate linearly within
//! it** (assuming the bucket's samples spread uniformly): without the
//! interpolation every rank landing in one bucket reports the same lower
//! edge, which collapses the tail — a daemon whose warm solves cluster
//! inside a single ~6 % bucket would report `p99 == p999` no matter how
//! the tail actually looks. Interpolated or not, the answer depends only
//! on the multiset of samples, never on arrival order.

/// Sub-buckets per octave; 16 keeps relative error under 1/16.
const SUB: u64 = 16;
/// log2(SUB): values below `SUB` get exact unit buckets.
const SUB_BITS: u32 = 4;
/// Bucket count covering the full `u64` range.
const BUCKETS: usize = (SUB as usize) + (64 - SUB_BITS as usize) * SUB as usize;

/// Flat bucket index of a sample. Values `< 16` map exactly; larger values
/// map to octave `o = floor(log2 v)` and sub-bucket `(v >> (o-4)) & 15`,
/// which tiles `[16, u64::MAX]` without gaps.
fn bucket_of(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros();
    let sub = (v >> (octave - SUB_BITS)) & (SUB - 1);
    (SUB as usize) + ((octave - SUB_BITS) as usize) * SUB as usize + sub as usize
}

/// Lower edge (smallest sample value) of a bucket — the value percentile
/// queries report.
fn bucket_floor(b: usize) -> u64 {
    if b < SUB as usize {
        return b as u64;
    }
    let rel = b - SUB as usize;
    let octave = (rel / SUB as usize) as u32 + SUB_BITS;
    let sub = (rel % SUB as usize) as u64;
    (1u64 << octave) + (sub << (octave - SUB_BITS))
}

/// Width of a bucket (distance to the next bucket's floor); saturates on
/// the last bucket, whose upper edge exceeds `u64::MAX`.
fn bucket_width(b: usize) -> u64 {
    if b < SUB as usize {
        return 1;
    }
    let octave = ((b - SUB as usize) / SUB as usize) as u32 + SUB_BITS;
    1u64 << (octave - SUB_BITS)
}

/// A latency histogram over `u64` samples (the daemon records
/// nanoseconds).
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    max: u64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.total += 1;
        self.sum += v as u128;
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Largest recorded sample (exact, not bucketised).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded samples, 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`): the bucket containing the
    /// sample of rank `ceil(q · count)` is located, then the value is
    /// interpolated linearly inside it — a bucket holding `c` samples is
    /// treated as `c` evenly spaced points starting at its lower edge. The
    /// result is clamped to the exact recorded maximum, so `p100` never
    /// overshoots. Returns 0 when empty.
    ///
    /// Interpolation is what keeps tail percentiles apart when they land
    /// in one bucket: two ranks inside a bucket of width `w` report values
    /// `w / c` apart instead of both reporting the lower edge.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let width = bucket_width(b);
                let into = rank - seen - 1; // 0-based rank inside the bucket
                let lerp = (width as u128 * into as u128 / c as u128) as u64;
                return bucket_floor(b).saturating_add(lerp).min(self.max);
            }
            seen += c;
        }
        self.max
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_tile_without_gaps() {
        // Every bucket's floor maps back to that bucket, and floors are
        // strictly increasing.
        let mut prev = None;
        for b in 0..BUCKETS {
            let f = bucket_floor(b);
            assert_eq!(bucket_of(f), b, "floor of bucket {b} maps back");
            if let Some(p) = prev {
                assert!(f > p, "floors strictly increase at bucket {b}");
            }
            prev = Some(f);
        }
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in [3u64, 3, 7, 15] {
            h.record(v);
        }
        assert_eq!(h.percentile(0.5), 3);
        assert_eq!(h.percentile(1.0), 15);
        assert_eq!(h.max(), 15);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn percentiles_are_order_independent_and_monotone() {
        let samples: Vec<u64> = (0..1000).map(|i| (i * 2654435761u64) % 5_000_000).collect();
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for &s in &samples {
            a.record(s);
        }
        for &s in samples.iter().rev() {
            b.record(s);
        }
        for q in [0.5, 0.9, 0.99, 0.999] {
            assert_eq!(a.percentile(q), b.percentile(q));
        }
        assert!(a.percentile(0.5) <= a.percentile(0.99));
        assert!(a.percentile(0.99) <= a.percentile(0.999));
        assert!(a.percentile(0.999) <= a.max());
        // Bucketisation error is bounded by 1/16 of the value.
        let exact_max: u64 = *samples.iter().max().unwrap();
        let p100 = a.percentile(1.0);
        assert!(p100 <= exact_max && exact_max - p100 <= exact_max / 16 + 1);
    }

    #[test]
    fn tail_percentiles_interpolate_within_buckets() {
        // A known multiset with a deliberately clustered tail:
        //   980 × 100    (bucket floor 100, width 4)
        //    15 × 1000   (bucket floor 992, width 32)
        //     5 × 10000  (bucket floor 9728, width 512)
        let mut h = LatencyHistogram::new();
        for _ in 0..980 {
            h.record(100);
        }
        for _ in 0..15 {
            h.record(1000);
        }
        for _ in 0..5 {
            h.record(10_000);
        }
        assert_eq!(h.count(), 1000);
        // rank 500 in the 980-sample bucket: 100 + 4·499/980 = 102.
        assert_eq!(h.percentile(0.50), 102);
        // rank 990 → 10th of 15 in the 992-bucket: 992 + 32·9/15 = 1011.
        assert_eq!(h.percentile(0.99), 1011);
        // rank 999 → 4th of 5 in the 9728-bucket: 9728 + 512·3/5 = 10035,
        // clamped to the exact recorded max.
        assert_eq!(h.percentile(0.999), 10_000);
        assert_ne!(h.percentile(0.99), h.percentile(0.999));
    }

    #[test]
    fn ranks_inside_one_bucket_no_longer_collapse() {
        // All mass inside one wide bucket (floor 983040, width 32768): the
        // pre-interpolation histogram reported the same lower edge for
        // every percentile here.
        let mut h = LatencyHistogram::new();
        for _ in 0..10 {
            h.record(1_000_000);
        }
        let (p50, p999) = (h.percentile(0.5), h.percentile(0.999));
        assert!(p50 < p999, "p50 {p50} must sit below p999 {p999}");
        assert_eq!(p999, 1_000_000, "tail clamps to the exact max");
        // Interpolation error stays inside the bucket's 1/16 bound.
        assert!(1_000_000 - p50 <= 1_000_000 / 16 + 1);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
