//! Log-bucketed latency histogram for the daemon's `stats` endpoint.
//!
//! Request latencies span five orders of magnitude (a warm ping is
//! microseconds, a cold `DPA1D` solve on Filterbank is tens of
//! milliseconds), so a linear histogram would either blur the fast end or
//! explode in buckets. This histogram keeps 16 sub-buckets per power of
//! two — ≤ 6.25 % relative quantisation error — in a flat `Vec<u64>`,
//! recording in O(1) with no allocation. Percentile queries return the
//! *lower edge* of the bucket holding the requested rank, which makes
//! reported p50/p99/p999 deterministic for a given multiset of samples
//! regardless of arrival order.

/// Sub-buckets per octave; 16 keeps relative error under 1/16.
const SUB: u64 = 16;
/// log2(SUB): values below `SUB` get exact unit buckets.
const SUB_BITS: u32 = 4;
/// Bucket count covering the full `u64` range.
const BUCKETS: usize = (SUB as usize) + (64 - SUB_BITS as usize) * SUB as usize;

/// Flat bucket index of a sample. Values `< 16` map exactly; larger values
/// map to octave `o = floor(log2 v)` and sub-bucket `(v >> (o-4)) & 15`,
/// which tiles `[16, u64::MAX]` without gaps.
fn bucket_of(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros();
    let sub = (v >> (octave - SUB_BITS)) & (SUB - 1);
    (SUB as usize) + ((octave - SUB_BITS) as usize) * SUB as usize + sub as usize
}

/// Lower edge (smallest sample value) of a bucket — the value percentile
/// queries report.
fn bucket_floor(b: usize) -> u64 {
    if b < SUB as usize {
        return b as u64;
    }
    let rel = b - SUB as usize;
    let octave = (rel / SUB as usize) as u32 + SUB_BITS;
    let sub = (rel % SUB as usize) as u64;
    (1u64 << octave) + (sub << (octave - SUB_BITS))
}

/// A latency histogram over `u64` samples (the daemon records
/// nanoseconds).
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    max: u64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.total += 1;
        self.sum += v as u128;
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Largest recorded sample (exact, not bucketised).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded samples, 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`), reported as the lower edge of
    /// the bucket containing the sample of rank `ceil(q · count)`.
    /// Returns 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_floor(b);
            }
        }
        bucket_floor(BUCKETS - 1)
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_tile_without_gaps() {
        // Every bucket's floor maps back to that bucket, and floors are
        // strictly increasing.
        let mut prev = None;
        for b in 0..BUCKETS {
            let f = bucket_floor(b);
            assert_eq!(bucket_of(f), b, "floor of bucket {b} maps back");
            if let Some(p) = prev {
                assert!(f > p, "floors strictly increase at bucket {b}");
            }
            prev = Some(f);
        }
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in [3u64, 3, 7, 15] {
            h.record(v);
        }
        assert_eq!(h.percentile(0.5), 3);
        assert_eq!(h.percentile(1.0), 15);
        assert_eq!(h.max(), 15);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn percentiles_are_order_independent_and_monotone() {
        let samples: Vec<u64> = (0..1000).map(|i| (i * 2654435761u64) % 5_000_000).collect();
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for &s in &samples {
            a.record(s);
        }
        for &s in samples.iter().rev() {
            b.record(s);
        }
        for q in [0.5, 0.9, 0.99, 0.999] {
            assert_eq!(a.percentile(q), b.percentile(q));
        }
        assert!(a.percentile(0.5) <= a.percentile(0.99));
        assert!(a.percentile(0.99) <= a.percentile(0.999));
        assert!(a.percentile(0.999) <= a.max());
        // Bucketisation error is bounded by 1/16 of the value.
        let exact_max: u64 = *samples.iter().max().unwrap();
        let p100 = a.percentile(1.0);
        assert!(p100 <= exact_max && exact_max - p100 <= exact_max / 16 + 1);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
