//! Minimal, dependency-free JSON support shared across the workspace.
//!
//! The workspace is dependency-free by policy (see `crates/vendor/`), so
//! the small amount of JSON it needs — append-only campaign records, the
//! committed `BENCH_*.json` files, and the `serve` wire protocol — is
//! handled by a ~150-line recursive-descent parser and a couple of
//! writers instead of `serde`. Numbers format through Rust's
//! shortest-roundtrip `Display`, which is deterministic — the property
//! the campaign's byte-identical resume guarantee rests on.
//!
//! Lived in `ea_bench::json` until 0.6; promoted here so the serve
//! daemon (and anything else below the benchmark harness) can speak the
//! protocol without depending on the experiment crate. `ea_bench::json`
//! remains as a deprecated re-export.
//!
//! Strictness notes (the wire protocol relies on these):
//!
//! * non-finite numbers are **rejected** on parse (`NaN`, `Infinity`,
//!   and any exponent that overflows to ±inf) — JSON has no such
//!   literals, and [`fmt_f64`] maps non-finite values to `null` on the
//!   way out, so a round trip can never smuggle one in;
//! * `\uXXXX` escapes decode surrogate *pairs* to the astral code point;
//!   a lone surrogate decodes to U+FFFD rather than erroring (our own
//!   writers never emit one).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value. Objects keep insertion order out of scope — the
/// consumers here look fields up by name.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses one JSON document (trailing whitespace allowed, nothing else).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    /// Object field access.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => out.push_str(&fmt_f64(*v)),
            Json::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (k, item) in items.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (k, (key, value)) in map.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(key));
                    out.push_str("\":");
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Compact serialisation back to JSON text (deterministic: object fields
/// in `BTreeMap` key order, numbers via [`fmt_f64`]).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

/// Convenience constructors for building response documents in code.
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

/// Builds a [`Json::Obj`] from `(key, value)` pairs.
pub fn obj<const N: usize>(fields: [(&str, Json); N]) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let val = parse_value(b, pos)?;
                map.insert(key, val);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut arr = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(arr));
            }
            loop {
                arr.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(arr));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => keyword(b, pos, "true", Json::Bool(true)),
        Some(b'f') => keyword(b, pos, "false", Json::Bool(false)),
        Some(b'n') => keyword(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn keyword(b: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let parsed = std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok());
    match parsed {
        // `str::parse::<f64>` happily overflows "1e999" to +inf; JSON has
        // no non-finite numbers, so reject rather than propagate a value
        // `fmt_f64` could never write back.
        Some(v) if v.is_finite() => Ok(Json::Num(v)),
        Some(_) => Err(format!("non-finite number at byte {start}")),
        None => Err(format!("bad number at byte {start}")),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = parse_hex4(b, *pos + 1)?;
                        *pos += 4;
                        if (0xd800..0xdc00).contains(&hex) {
                            // High surrogate: a following `\uDC00..DFFF`
                            // completes the pair; anything else leaves a
                            // lone surrogate -> U+FFFD.
                            if b.get(*pos + 1) == Some(&b'\\') && b.get(*pos + 2) == Some(&b'u') {
                                let low = parse_hex4(b, *pos + 3)?;
                                if (0xdc00..0xe000).contains(&low) {
                                    *pos += 6;
                                    let cp = 0x10000 + ((hex - 0xd800) << 10) + (low - 0xdc00);
                                    out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                                } else {
                                    out.push('\u{fffd}');
                                }
                            } else {
                                out.push('\u{fffd}');
                            }
                        } else {
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(&c) => {
                // Multi-byte UTF-8 sequences pass through unchanged.
                let ch_len = utf8_len(c);
                let s = std::str::from_utf8(
                    b.get(*pos..*pos + ch_len)
                        .ok_or_else(|| format!("truncated utf-8 at byte {}", *pos))?,
                )
                .map_err(|_| format!("bad utf-8 at byte {}", *pos))?;
                out.push_str(s);
                *pos += ch_len;
            }
        }
    }
}

fn parse_hex4(b: &[u8], at: usize) -> Result<u32, String> {
    b.get(at..at + 4)
        .and_then(|h| std::str::from_utf8(h).ok())
        .and_then(|h| u32::from_str_radix(h, 16).ok())
        .ok_or_else(|| format!("bad \\u escape at byte {at}"))
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Escapes a string for embedding in JSON output (quotes not included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number: shortest-roundtrip, with non-finite
/// values mapped to `null` (JSON has no NaN/inf). Deterministic — equal
/// bits always produce equal bytes.
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `Display` prints integral floats without a dot; keep them valid
        // JSON numbers as-is (1e30 etc. are fine too).
        s
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bench_file_shape() {
        let doc = r#"{ "results": [
            {"name": "a/b", "value": 1.5e-2, "unit": "J"},
            {"name": "c", "median_ns": 123.25, "samples": 10}
        ] }"#;
        let v = Json::parse(doc).unwrap();
        let results = v.get("results").unwrap().as_arr().unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].get("name").unwrap().as_str(), Some("a/b"));
        assert_eq!(results[0].get("value").unwrap().as_f64(), Some(1.5e-2));
        assert_eq!(results[1].get("median_ns").unwrap().as_f64(), Some(123.25));
    }

    #[test]
    fn round_trips_escapes_and_numbers() {
        let v = Json::parse(r#"{"s": "a\"b\\c\nd", "n": -1.25e-3, "t": true, "z": null}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\"b\\c\nd"));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(-1.25e-3));
        assert_eq!(v.get("t"), Some(&Json::Bool(true)));
        assert_eq!(v.get("z"), Some(&Json::Null));
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{\"a\": 1").is_err()); // truncated
        assert!(Json::parse("{} x").is_err()); // trailing
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn rejects_nan_and_inf() {
        // No JSON literal spells a non-finite number...
        assert!(Json::parse("NaN").is_err());
        assert!(Json::parse("Infinity").is_err());
        assert!(Json::parse("-Infinity").is_err());
        // ...and an exponent overflowing to +-inf is rejected too.
        assert!(Json::parse("1e999").is_err());
        assert!(Json::parse("-1e999").is_err());
        assert!(Json::parse("[1.0, 1e999]").is_err());
        // The writer side maps them to null.
        assert_eq!(fmt_f64(f64::INFINITY), "null");
        assert_eq!(fmt_f64(f64::NEG_INFINITY), "null");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn unicode_escapes_decode() {
        // BMP escape, raw multi-byte UTF-8, and an astral surrogate pair.
        let v = Json::parse(r#""café ✓ naïve 🦀""#).unwrap();
        assert_eq!(v.as_str(), Some("café ✓ naïve 🦀"));
        // Lone surrogates decode to the replacement character (both a
        // dangling high surrogate and an unpaired low one).
        assert_eq!(
            Json::parse(r#""\ud83e x""#).unwrap().as_str(),
            Some("\u{fffd} x")
        );
        assert_eq!(
            Json::parse(r#""\udd80""#).unwrap().as_str(),
            Some("\u{fffd}")
        );
        // High surrogate followed by a non-surrogate escape.
        assert_eq!(
            Json::parse(r#""\ud83eA""#).unwrap().as_str(),
            Some("\u{fffd}A")
        );
        // Truncated escapes error instead of panicking.
        assert!(Json::parse(r#""\u00""#).is_err());
        assert!(Json::parse(r#""\ud83e\u00""#).is_err());
    }

    #[test]
    fn seeded_string_roundtrip() {
        // Seeded pseudo-random strings over a hostile alphabet round-trip
        // through escape -> parse exactly.
        let alphabet: Vec<char> = "a\"\\\n\t\r\u{1}\u{1f}é✓🦀\u{0}z ".chars().collect();
        let mut state = 0x9e3779b97f4a7c15u64;
        for _ in 0..64 {
            let mut s = String::new();
            for _ in 0..24 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                s.push(alphabet[(state >> 33) as usize % alphabet.len()]);
            }
            let doc = format!("\"{}\"", escape(&s));
            let back = Json::parse(&doc).unwrap();
            assert_eq!(back.as_str(), Some(s.as_str()), "doc: {doc}");
        }
    }

    #[test]
    fn value_writer_roundtrips() {
        let doc = r#"{"a":[1,2.5,"x"],"b":{"c":null,"d":true},"e":"q\"uote"}"#;
        let v = Json::parse(doc).unwrap();
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
        // Compact writer output is stable (BTreeMap order + fmt_f64).
        assert_eq!(Json::parse(&text).unwrap().to_string(), text);
    }

    #[test]
    fn obj_builder() {
        let v = obj([("x", 1.5f64.into()), ("s", "hi".into())]);
        assert_eq!(v.get("x").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("s").unwrap().as_str(), Some("hi"));
    }

    #[test]
    fn f64_formatting_is_deterministic() {
        assert_eq!(fmt_f64(0.017915296047672412), "0.017915296047672412");
        assert_eq!(fmt_f64(2.0), "2");
        assert_eq!(fmt_f64(f64::NAN), "null");
        // Round-trip: parse(format(x)) == x bit-for-bit.
        for &x in &[1.0 / 3.0, 1e-300, 123456.789, -0.0] {
            let s = fmt_f64(x);
            assert_eq!(s.parse::<f64>().unwrap().to_bits(), x.to_bits());
        }
    }
}
