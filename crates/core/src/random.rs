//! The `Random` heuristic (paper §5.1).
//!
//! Two-step randomized procedure, repeated ten times, keeping the best
//! valid draw:
//!
//! 1. **Random DAG-partition.** Clusters are grown sequentially. Each
//!    cluster draws a random core speed (among speeds that can execute its
//!    seed stage within the period); stages are then drawn uniformly from
//!    the list of stages whose predecessors are all assigned. A drawn stage
//!    that would push the cluster's computation past the period closes the
//!    cluster; the next cluster is seeded with the *first* stage of the
//!    current ready list, as in the paper. Sequential growth guarantees the
//!    cluster quotient is acyclic.
//! 2. **Random placement.** Clusters are mapped onto distinct cores drawn
//!    uniformly, communications follow XY routing, and the draw is kept only
//!    if no link exceeds the bandwidth-period product.

use cmp_mapping::{Mapping, RouteSpec};
use cmp_platform::{CoreId, Platform, RouteTable};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use spg::{Spg, StageId};

use crate::common::{better, validated_with, Failure, Solution};

/// Number of independent draws (paper §5.1: "Random calls ten times this
/// procedure").
pub const RANDOM_TRIALS: usize = 10;

/// Runs the `Random` heuristic: best of [`RANDOM_TRIALS`] random draws.
#[doc(hidden)]
#[deprecated(
    since = "0.2.0",
    note = "use `ea_core::solvers::Random` with an `Instance`"
)]
pub fn random_heuristic(
    spg: &Spg,
    pf: &Platform,
    period: f64,
    seed: u64,
) -> Result<Solution, Failure> {
    random_trials(spg, pf, period, seed, RANDOM_TRIALS, None)
}

/// `Random` with an explicit trial count, behind both the deprecated free
/// function and the [`crate::solvers::Random`] solver (which passes its
/// session's cached route table).
pub(crate) fn random_trials(
    spg: &Spg,
    pf: &Platform,
    period: f64,
    seed: u64,
    trials: usize,
    table: Option<&RouteTable>,
) -> Result<Solution, Failure> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut best: Option<Solution> = None;
    for _ in 0..trials {
        best = better(best, random_once(spg, pf, period, &mut rng, table));
    }
    best.ok_or_else(|| Failure::NoValidMapping(format!("no valid draw in {trials} trials")))
}

/// One draw of the two-step procedure; `None` when the draw is invalid.
fn random_once<R: Rng>(
    spg: &Spg,
    pf: &Platform,
    period: f64,
    rng: &mut R,
    table: Option<&RouteTable>,
) -> Option<Solution> {
    let (clusters, speeds) = random_partition(spg, pf, period, rng)?;
    // Random one-to-one placement of clusters onto cores with a live PE
    // (identical to all cores, in identical order, on a healthy platform).
    let mut cores: Vec<CoreId> = pf.alive_cores().collect();
    if clusters.len() > cores.len() {
        return None;
    }
    cores.shuffle(rng);
    let mut alloc = vec![CoreId { u: 0, v: 0 }; spg.n()];
    let mut speed = vec![None; pf.n_cores()];
    for ((cluster, &k), &core) in clusters.iter().zip(&speeds).zip(&cores) {
        for &s in cluster {
            alloc[s.idx()] = core;
        }
        speed[core.flat(pf.q)] = Some(k);
    }
    let mapping = Mapping {
        alloc,
        speed,
        routes: RouteSpec::for_platform(pf),
    };
    validated_with(spg, pf, mapping, period, table).ok()
}

/// Step 1: a random chain of clusters respecting the DAG-partition rule and
/// the computation period, with one random speed per cluster.
fn random_partition<R: Rng>(
    spg: &Spg,
    pf: &Platform,
    period: f64,
    rng: &mut R,
) -> Option<(Vec<Vec<StageId>>, Vec<usize>)> {
    let n = spg.n();
    let mut preds_left: Vec<usize> = (0..n).map(|i| spg.in_degree(StageId(i as u32))).collect();
    // `ready` keeps insertion order; the paper seeds the next cluster with
    // the *first* stage of the current list.
    let mut ready: Vec<StageId> = vec![spg.source()];
    let mut clusters: Vec<Vec<StageId>> = Vec::new();
    let mut speeds: Vec<usize> = Vec::new();

    let release = |s: StageId, ready: &mut Vec<StageId>, preds_left: &mut Vec<usize>| {
        for (_, e) in spg.out_edges(s) {
            preds_left[e.dst.idx()] -= 1;
            if preds_left[e.dst.idx()] == 0 {
                ready.push(e.dst);
            }
        }
    };

    while !ready.is_empty() {
        // Seed a fresh cluster with the first ready stage.
        let seed_stage = ready.remove(0);
        let m = pf.power.m();
        let feasible: Vec<usize> = (0..m)
            .filter(|&k| spg.weight(seed_stage) / pf.power.speed(k).freq <= period * (1.0 + 1e-12))
            .collect();
        let &k = feasible.as_slice().choose(rng)?;
        let cap = period * pf.power.speed(k).freq * (1.0 + 1e-12);
        let mut work = spg.weight(seed_stage);
        let mut cluster = vec![seed_stage];
        release(seed_stage, &mut ready, &mut preds_left);

        // Draw stages uniformly while the computation fits; a non-fitting
        // draw closes the cluster (paper: "as long as computations do not
        // exceed the period").
        while !ready.is_empty() {
            let idx = rng.gen_range(0..ready.len());
            if work + spg.weight(ready[idx]) > cap {
                break;
            }
            let s = ready.remove(idx);
            work += spg.weight(s);
            cluster.push(s);
            release(s, &mut ready, &mut preds_left);
        }
        clusters.push(cluster);
        speeds.push(k);
    }
    debug_assert_eq!(clusters.iter().map(|c| c.len()).sum::<usize>(), n);
    Some((clusters, speeds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmp_mapping::is_dag_partition;
    use rand::SeedableRng;
    use spg::{chain, SpgGenConfig};

    #[test]
    fn loose_period_succeeds_on_chain() {
        let pf = Platform::paper(4, 4);
        let g = chain(&[1e6; 10], &[1e3; 9]);
        let sol = random_trials(&g, &pf, 1.0, 42, RANDOM_TRIALS, None).unwrap();
        assert!(sol.energy() > 0.0);
    }

    #[test]
    fn impossible_period_fails() {
        let pf = Platform::paper(2, 2);
        let g = chain(&[2e9, 2e9], &[1.0]);
        // One stage alone already exceeds T at the fastest speed.
        assert!(random_trials(&g, &pf, 1.0, 1, RANDOM_TRIALS, None).is_err());
    }

    #[test]
    fn partition_is_dag_partition_and_fits_period() {
        let pf = Platform::paper(4, 4);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let cfg = SpgGenConfig {
            n: 30,
            elevation: 4,
            ..Default::default()
        };
        let g = spg::random_spg(&cfg, &mut rng);
        let t = 5e-3;
        for trial in 0..20 {
            let mut r2 = ChaCha8Rng::seed_from_u64(trial);
            if let Some((clusters, speeds)) = random_partition(&g, &pf, t, &mut r2) {
                // Covers all stages exactly once.
                let mut seen = vec![false; g.n()];
                for c in &clusters {
                    for s in c {
                        assert!(!seen[s.idx()]);
                        seen[s.idx()] = true;
                    }
                }
                assert!(seen.iter().all(|&b| b));
                // Compute fits per cluster.
                for (c, &k) in clusters.iter().zip(&speeds) {
                    let w: f64 = c.iter().map(|s| g.weight(*s)).sum();
                    assert!(w / pf.power.speed(k).freq <= t * (1.0 + 1e-9));
                }
                // Chain order => DAG partition (place each cluster on its
                // own fake core along a row of a wide-enough platform).
                let wide = Platform::paper(1, clusters.len().max(1) as u32);
                let mut alloc = vec![CoreId { u: 0, v: 0 }; g.n()];
                for (j, c) in clusters.iter().enumerate() {
                    for s in c {
                        alloc[s.idx()] = CoreId { u: 0, v: j as u32 };
                    }
                }
                assert!(is_dag_partition(&g, &alloc));
                let _ = wide;
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let pf = Platform::paper(4, 4);
        let g = chain(&[1e6; 8], &[1e3; 7]);
        let a = random_trials(&g, &pf, 0.01, 9, RANDOM_TRIALS, None).unwrap();
        let b = random_trials(&g, &pf, 0.01, 9, RANDOM_TRIALS, None).unwrap();
        assert_eq!(a.energy(), b.energy());
    }

    #[test]
    fn more_clusters_than_cores_fails() {
        // 5 stages, each saturating a core at top speed, on a 2x2 CMP with a
        // period that forces one stage per cluster.
        let pf = Platform::paper(2, 2);
        let g = chain(&[0.9e9; 5], &[1.0; 4]);
        assert!(random_trials(&g, &pf, 1.0, 3, RANDOM_TRIALS, None).is_err());
    }
}
