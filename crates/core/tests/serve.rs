//! End-to-end tests for the serve subsystem: a real socket server under
//! concurrent clients, warm/cold bit-identity across the StreamIt suite,
//! deterministic LRU eviction replay, structured deadline backpressure,
//! shutdown draining in-flight work, cache-persistence tolerance, and
//! batched-vs-per-request equivalence.

use std::io::Write;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::mpsc;
use std::thread;
use std::time::Duration;

use ea_core::json::{obj, Json};
use ea_core::serve::{read_frame, write_frame, Client, ServeConfig, Server, Service};

fn solve_frame(workload: Json, solvers: &str, extra: &[(&str, Json)]) -> Json {
    let mut fields = vec![
        ("op".to_string(), Json::from("solve")),
        ("workload".to_string(), workload),
        ("utilisation".to_string(), Json::from(0.5)),
        ("solvers".to_string(), Json::from(solvers)),
        ("seed".to_string(), Json::from(7u64)),
    ];
    for (k, v) in extra {
        fields.push((k.to_string(), v.clone()));
    }
    Json::Obj(fields.into_iter().collect())
}

fn streamit(name: &str) -> Json {
    obj([("streamit", Json::from(name))])
}

fn energy_bits(resp: &Json) -> Option<u64> {
    resp.get("result")
        .and_then(|r| r.get("energy"))
        .and_then(Json::as_f64)
        .map(f64::to_bits)
}

/// A throwaway spill directory under the system temp dir.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xp-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Reads a counter out of a `stats` response, e.g. `spill.skipped`.
fn stat(service: &Service, outer: &str, inner: &str) -> f64 {
    let resp = service.handle(&obj([("op", Json::from("stats"))]));
    resp.get("result")
        .and_then(|r| r.get(outer))
        .and_then(|o| o.get(inner))
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("stats missing {outer}.{inner}: {resp}"))
}

/// Warm solves reproduce cold energies bit-for-bit across the whole
/// StreamIt suite — the cache stores solver inputs, never answers, so a
/// hit can shift latency but not results.
#[test]
fn warm_solves_are_bit_identical_across_streamit() {
    let service = Service::new(ServeConfig::default());
    let mut warm_hits = 0usize;
    for spec in &spg::STREAMIT_SPECS {
        let req = solve_frame(streamit(spec.name), "greedy,dpa1d", &[]);
        let cold = service.handle(&req);
        let warm = service.handle(&req);
        assert_eq!(
            energy_bits(&cold),
            energy_bits(&warm),
            "{}: warm energy must match cold bit-for-bit",
            spec.name
        );
        // Infeasible flows must fail identically too.
        assert_eq!(
            cold.get("ok").and_then(Json::as_bool),
            warm.get("ok").and_then(Json::as_bool),
            "{}: warm/cold feasibility must agree",
            spec.name
        );
        if warm
            .get("result")
            .and_then(|r| r.get("warm"))
            .and_then(Json::as_bool)
            == Some(true)
        {
            warm_hits += 1;
        }
    }
    assert!(
        warm_hits >= 4,
        "expected several flows to fit the artifact cache, got {warm_hits}"
    );
    let stats = service.cache_stats();
    assert!(stats.hits > 0, "repeat requests must hit the cache");
}

/// Replaying the same request script into a fresh service evicts the same
/// artifacts in the same order: LRU over a serialized request stream is
/// deterministic.
#[test]
fn lru_eviction_replay_is_deterministic() {
    let script: Vec<Json> = ["FFT", "TDE", "DES", "FFT", "TDE"]
        .iter()
        .map(|n| solve_frame(streamit(n), "greedy,dpa1d", &[]))
        .collect();
    let replay = || {
        let service = Service::new(ServeConfig {
            // Small enough that three flows' lattices cannot coexist.
            cache_bytes: 4096,
            ..ServeConfig::default()
        });
        for req in &script {
            let resp = service.handle(req);
            assert_eq!(
                resp.get("ok").and_then(Json::as_bool),
                Some(true),
                "solve failed: {resp}"
            );
        }
        (service.eviction_log(), service.cache_stats())
    };
    let (log_a, stats_a) = replay();
    let (log_b, stats_b) = replay();
    assert!(
        stats_a.evictions > 0,
        "the 4 KiB bound must force evictions (got {stats_a:?})"
    );
    assert_eq!(log_a, log_b, "same script must evict in the same order");
    assert_eq!(
        (stats_a.hits, stats_a.misses, stats_a.evictions),
        (stats_b.hits, stats_b.misses, stats_b.evictions),
        "cache counters must replay deterministically"
    );
}

/// A zero deadline surfaces as structured `too_expensive` backpressure
/// with the budget telemetry (phase/cap/count), not a generic error.
#[test]
fn deadline_maps_to_structured_too_expensive() {
    let service = Service::new(ServeConfig::default());
    let req = solve_frame(
        streamit("Vocoder"),
        "greedy,dpa1d",
        &[("deadline_ms", Json::from(0u64))],
    );
    let resp = service.handle(&req);
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
    let err = resp.get("error").expect("error body");
    assert_eq!(
        err.get("kind").and_then(Json::as_str),
        Some("too_expensive"),
        "unexpected error: {resp}"
    );
    assert_eq!(err.get("phase").and_then(Json::as_str), Some("deadline"));
    assert!(err.get("cap").and_then(Json::as_f64).is_some());
    assert!(err.get("count").and_then(Json::as_f64).is_some());
    // The per-request override beats the (unbounded) default, and a
    // server-level default applies when the request carries none.
    let service = Service::new(ServeConfig {
        default_deadline_ms: Some(0),
        ..ServeConfig::default()
    });
    let resp = service.handle(&solve_frame(streamit("Vocoder"), "greedy,dpa1d", &[]));
    let kind = resp
        .get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Json::as_str);
    assert_eq!(kind, Some("too_expensive"));
}

/// Several clients hammer one daemon with a mix of solves, pings, and
/// stats; every solve of the same workload must return the same energy
/// no matter which connection, ordering, or cache state produced it.
#[test]
fn concurrent_clients_agree_on_energies() {
    let server = Server::bind_tcp("127.0.0.1:0", ServeConfig::default()).unwrap();
    let addr = server.local_addr().unwrap();
    let service = server.service();
    let daemon = thread::spawn(move || server.run().unwrap());

    const CLIENTS: usize = 4;
    const ROUNDS: usize = 3;
    let flows = ["FFT", "TDE", "MPEG2-noparser"];
    let (tx, rx) = mpsc::channel::<(String, u64)>();
    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let tx = tx.clone();
            thread::spawn(move || {
                let mut client = Client::connect_tcp(addr).unwrap();
                client.ping().unwrap();
                for round in 0..ROUNDS {
                    // Stagger flow order per client to mix cold/warm paths.
                    for k in 0..flows.len() {
                        let flow = flows[(c + round + k) % flows.len()];
                        let resp = client
                            .request(&solve_frame(streamit(flow), "greedy,dpa1d", &[]))
                            .unwrap();
                        let bits =
                            energy_bits(&resp).unwrap_or_else(|| panic!("{flow} failed: {resp}"));
                        tx.send((flow.to_string(), bits)).unwrap();
                    }
                    client.stats().unwrap();
                }
            })
        })
        .collect();
    drop(tx);
    let mut seen: std::collections::HashMap<String, u64> = Default::default();
    for (flow, bits) in rx {
        let prev = seen.entry(flow.clone()).or_insert(bits);
        assert_eq!(*prev, bits, "{flow}: divergent energy across clients");
    }
    for w in workers {
        w.join().unwrap();
    }
    assert_eq!(seen.len(), flows.len());
    let stats = service.cache_stats();
    assert!(stats.hits > 0, "concurrent repeats must share artifacts");

    let mut control = Client::connect_tcp(addr).unwrap();
    control.shutdown().unwrap();
    daemon.join().unwrap();
}

/// A client that pauses mid-frame for longer than the server's shutdown
/// poll tick (100 ms) must not desynchronise the stream: the server keeps
/// the partial frame and resumes, answering every request correctly.
#[test]
fn slow_mid_frame_writes_do_not_desync_the_stream() {
    let server = Server::bind_tcp("127.0.0.1:0", ServeConfig::default()).unwrap();
    let addr = server.local_addr().unwrap();
    let daemon = thread::spawn(move || server.run().unwrap());

    let mut stream = TcpStream::connect(addr).unwrap();
    let mut wire = Vec::new();
    write_frame(&mut wire, &obj([("op", Json::from("ping"))])).unwrap();
    // Pause inside the length prefix, then inside the body — both splits
    // land mid-frame, each pause longer than the server's poll interval.
    for cut in [2, wire.len() - 3] {
        stream.write_all(&wire[..cut]).unwrap();
        stream.flush().unwrap();
        thread::sleep(Duration::from_millis(250));
        stream.write_all(&wire[cut..]).unwrap();
        stream.flush().unwrap();
        let resp = read_frame(&mut stream)
            .expect("split frame must not desync the server")
            .expect("split frame must still be answered");
        assert_eq!(
            resp.get("ok").and_then(Json::as_bool),
            Some(true),
            "response: {resp}"
        );
    }
    // The stream is still in sync: a whole request round-trips.
    write_frame(&mut stream, &obj([("op", Json::from("stats"))])).unwrap();
    let resp = read_frame(&mut stream).unwrap().unwrap();
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
    drop(stream);

    let mut control = Client::connect_tcp(addr).unwrap();
    control.shutdown().unwrap();
    daemon.join().unwrap();
}

/// `bind_unix` probes an existing socket before unlinking it: a live
/// daemon keeps its endpoint (`AddrInUse`), a crashed daemon's stale file
/// is replaced, and a non-socket file is never deleted.
#[cfg(unix)]
#[test]
fn bind_unix_refuses_live_sockets_and_replaces_stale_ones() {
    let dir = std::env::temp_dir().join(format!("xp-serve-bind-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("daemon.sock");

    let server = Server::bind_unix(&path, ServeConfig::default()).unwrap();
    let daemon = thread::spawn(move || server.run().unwrap());
    let mut client = Client::connect_unix(&path).unwrap();
    client.ping().unwrap();
    let err = Server::bind_unix(&path, ServeConfig::default())
        .err()
        .expect("binding over a live daemon must fail");
    assert_eq!(
        err.kind(),
        std::io::ErrorKind::AddrInUse,
        "a second daemon must not steal a live socket"
    );
    client.shutdown().unwrap();
    daemon.join().unwrap();
    assert!(!path.exists(), "run() removes the socket file it created");

    // A stale socket (listener gone, file left behind) is replaced.
    drop(std::os::unix::net::UnixListener::bind(&path).unwrap());
    assert!(path.exists());
    let server = Server::bind_unix(&path, ServeConfig::default()).unwrap();
    server.service().request_shutdown();
    server.run().unwrap();

    // A plain file at the path is refused, not unlinked.
    std::fs::write(&path, b"not a socket").unwrap();
    let err = Server::bind_unix(&path, ServeConfig::default())
        .err()
        .expect("binding over a plain file must fail");
    assert_eq!(err.kind(), std::io::ErrorKind::AlreadyExists);
    assert!(path.exists(), "a non-socket file must survive bind_unix");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Shutdown stops the accept loop but drains in-flight requests: a frame
/// already on the wire still gets its full response before the daemon
/// exits.
#[test]
fn shutdown_drains_in_flight_requests() {
    let server = Server::bind_tcp("127.0.0.1:0", ServeConfig::default()).unwrap();
    let addr = server.local_addr().unwrap();
    let daemon = thread::spawn(move || server.run().unwrap());

    let mut stream = TcpStream::connect(addr).unwrap();
    // Send the (slow) solve frame first, then trigger shutdown from a
    // second connection while it is in flight.
    write_frame(
        &mut stream,
        &solve_frame(streamit("Vocoder"), "greedy,dpa1d", &[]),
    )
    .unwrap();
    let mut control = Client::connect_tcp(addr).unwrap();
    control.shutdown().unwrap();
    drop(control);

    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let resp = read_frame(&mut stream)
        .expect("in-flight request must not be torn by shutdown")
        .expect("in-flight request must still be answered");
    assert_eq!(
        resp.get("ok").and_then(Json::as_bool),
        Some(true),
        "drained response: {resp}"
    );
    assert!(energy_bits(&resp).is_some());

    daemon.join().unwrap();
    // After shutdown the port stops accepting (give the OS a beat).
    thread::sleep(Duration::from_millis(50));
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err(),
        "daemon must stop listening after shutdown"
    );
}

/// A spill directory poisoned with garbage and version-skewed files must
/// not break startup: bad files are skipped (and counted), good solves
/// proceed, and fresh artifacts still spill next to the junk.
#[test]
fn corrupt_and_version_skewed_spill_files_are_tolerated() {
    let dir = scratch_dir("poisoned");
    // Not even the magic.
    std::fs::write(dir.join("garbage.xpa"), b"this is not an artifact").unwrap();
    // Right magic, wrong version: a daemon from the future.
    let mut skewed = Vec::new();
    skewed.extend_from_slice(b"XPARTIFS");
    skewed.extend_from_slice(&999u32.to_le_bytes());
    skewed.extend_from_slice(&[0u8; 64]);
    std::fs::write(dir.join("lattice-0000000000000000.xpa"), &skewed).unwrap();
    // A non-spill file is not load_dir's business at all.
    std::fs::write(dir.join("README.txt"), b"hands off").unwrap();

    let service = Service::new(ServeConfig {
        cache_dir: Some(dir.clone()),
        ..ServeConfig::default()
    });
    assert_eq!(stat(&service, "spill", "loaded"), 0.0);
    assert_eq!(
        stat(&service, "spill", "skipped"),
        2.0,
        "both bad .xpa files are skipped, the .txt is ignored"
    );

    // The daemon is healthy: a solve succeeds and spills write-behind.
    let resp = service.handle(&solve_frame(streamit("FFT"), "greedy,dpa1d", &[]));
    assert_eq!(
        resp.get("ok").and_then(Json::as_bool),
        Some(true),
        "solve must survive a poisoned spill dir: {resp}"
    );
    assert!(
        stat(&service, "spill", "spilled") >= 1.0,
        "fresh artifacts must still spill"
    );
    assert_eq!(stat(&service, "spill", "errors"), 0.0);
    drop(service);

    // A restart loads what the solve spilled and re-skips the junk.
    let reborn = Service::new(ServeConfig {
        cache_dir: Some(dir.clone()),
        ..ServeConfig::default()
    });
    assert!(stat(&reborn, "spill", "loaded") >= 1.0);
    assert_eq!(stat(&reborn, "spill", "skipped"), 2.0);
    drop(reborn);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A solve drained during shutdown still spills its artifacts: the
/// write-behind happens on the inline path too, so a daemon that goes
/// down mid-request leaves a warm disk tier behind.
#[test]
fn draining_shutdown_still_spills_artifacts() {
    let dir = scratch_dir("drain-spill");
    let cfg = ServeConfig {
        cache_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };
    let server = Server::bind_tcp("127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr().unwrap();
    let daemon = thread::spawn(move || server.run().unwrap());

    // The solve goes on the wire first; shutdown races it from a second
    // connection, so it completes on the drain (or inline) path.
    let mut stream = TcpStream::connect(addr).unwrap();
    write_frame(
        &mut stream,
        &solve_frame(streamit("FFT"), "greedy,dpa1d", &[]),
    )
    .unwrap();
    let mut control = Client::connect_tcp(addr).unwrap();
    control.shutdown().unwrap();
    drop(control);

    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let resp = read_frame(&mut stream).unwrap().unwrap();
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
    let drained_bits = energy_bits(&resp).expect("drained solve must carry an energy");
    daemon.join().unwrap();

    let spilled: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().and_then(|x| x.to_str()) == Some("xpa"))
        .collect();
    assert!(
        !spilled.is_empty(),
        "the drained solve must leave spill files behind"
    );

    // And they make the next daemon warm, with the same answer.
    let reborn = Service::new(ServeConfig {
        cache_dir: Some(dir.clone()),
        ..ServeConfig::default()
    });
    assert!(stat(&reborn, "spill", "loaded") >= 1.0);
    let warm = reborn.handle(&solve_frame(streamit("FFT"), "greedy,dpa1d", &[]));
    assert_eq!(
        energy_bits(&warm),
        Some(drained_bits),
        "the reloaded artifacts must reproduce the drained solve bit-for-bit"
    );
    assert_eq!(
        warm.get("result")
            .and_then(|r| r.get("warm"))
            .and_then(Json::as_bool),
        Some(true),
        "first post-restart solve must be warm: {warm}"
    );
    drop(reborn);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The batched scheduler and per-request dispatch are interchangeable in
/// results: same flows, same seeds, bit-identical energies and
/// feasibility — batching shifts latency, never answers.
#[test]
fn batched_and_unbatched_services_agree_bit_for_bit() {
    let batched = Service::new(ServeConfig::default());
    let direct = Service::new(ServeConfig {
        batching: false,
        ..ServeConfig::default()
    });
    for flow in ["FFT", "TDE", "Vocoder", "MPEG2-noparser"] {
        let req = solve_frame(streamit(flow), "greedy,dpa1d", &[]);
        let a = batched.handle(&req);
        let b = direct.handle(&req);
        assert_eq!(
            energy_bits(&a),
            energy_bits(&b),
            "{flow}: batched and per-request energies must match bit-for-bit"
        );
        assert_eq!(
            a.get("ok").and_then(Json::as_bool),
            b.get("ok").and_then(Json::as_bool),
            "{flow}: feasibility must agree"
        );
    }
    let sched = batched.scheduler_stats();
    assert!(
        sched.batches >= 4,
        "the batched service must have routed solves through the scheduler (got {sched:?})"
    );
    assert_eq!(direct.scheduler_stats().batches, 0);
}
