//! The mapping data structure (paper §3.3).

use std::collections::HashMap;

use cmp_platform::{
    routing::{
        snake_index, snake_route, snake_route_visit, validate_route, xy_route, xy_route_visit,
    },
    shortest_route_visit, CoreId, DirLink, Platform, RouteOrder, RoutePolicy, Router,
    ShortestRouter,
};
use spg::{EdgeId, Spg};

/// How inter-core communications are routed.
#[derive(Debug, Clone, PartialEq)]
pub enum RouteSpec {
    /// Dimension-ordered XY routing for every edge (paper §5.1; `RowFirst`
    /// is also the path shape produced by `DPA2D`, §5.3).
    Xy(RouteOrder),
    /// Route along the snake embedding of the uni-line CMP (paper §5.4);
    /// traffic between snake positions `a` and `b` crosses the `|b − a|`
    /// intermediate snake links and nothing else.
    Snake,
    /// Wrap-aware shortest routing ([`RoutePolicy::Shortest`]): dimension-
    /// ordered like XY, but each dimension takes the direction with fewer
    /// hops, including torus/ring wrap links. On a mesh this is identical
    /// to `Xy(RowFirst)`.
    Shortest,
    /// An explicit path per edge (edges between co-located stages may be
    /// omitted or empty). Used by the exact solver and by tests.
    Custom(HashMap<EdgeId, Vec<DirLink>>),
}

impl RouteSpec {
    /// The generating [`RoutePolicy`], or `None` for per-edge
    /// [`RouteSpec::Custom`] paths (which no precomputed table covers).
    pub fn policy(&self) -> Option<RoutePolicy> {
        match self {
            RouteSpec::Xy(RouteOrder::RowFirst) => Some(RoutePolicy::Xy),
            RouteSpec::Xy(RouteOrder::ColFirst) => Some(RoutePolicy::Yx),
            RouteSpec::Snake => Some(RoutePolicy::Snake),
            RouteSpec::Shortest => Some(RoutePolicy::Shortest),
            RouteSpec::Custom(_) => None,
        }
    }

    /// The route spec of a policy (inverse of [`RouteSpec::policy`]).
    pub fn from_policy(policy: RoutePolicy) -> RouteSpec {
        match policy {
            RoutePolicy::Xy => RouteSpec::Xy(RouteOrder::RowFirst),
            RoutePolicy::Yx => RouteSpec::Xy(RouteOrder::ColFirst),
            RoutePolicy::Shortest => RouteSpec::Shortest,
            RoutePolicy::Snake => RouteSpec::Snake,
        }
    }

    /// The platform's default route spec ([`Platform::policy`]): what
    /// solvers use for dimension-routed mappings — `Xy(RowFirst)` on the
    /// paper's mesh, shortest on torus/ring.
    pub fn for_platform(pf: &Platform) -> RouteSpec {
        RouteSpec::from_policy(pf.policy)
    }
}

/// A complete mapping: stage→core allocation, per-core speed selection, and
/// a routing discipline.
#[derive(Debug, Clone, PartialEq)]
pub struct Mapping {
    /// Core of each stage, indexed by `StageId`.
    pub alloc: Vec<CoreId>,
    /// Speed index per core (flat `u·q + v` order); `None` = core off.
    /// Cores holding stages must have a speed.
    pub speed: Vec<Option<usize>>,
    /// Routing discipline.
    pub routes: RouteSpec,
}

impl Mapping {
    /// An all-on-one-core mapping skeleton (every stage on `core`), with no
    /// speeds assigned yet.
    pub fn all_on(pf: &Platform, n_stages: usize, core: CoreId) -> Self {
        Mapping {
            alloc: vec![core; n_stages],
            speed: vec![None; pf.n_cores()],
            routes: RouteSpec::Xy(RouteOrder::RowFirst),
        }
    }

    /// The concrete link path of one application edge under this mapping
    /// (empty when both endpoints share a core).
    ///
    /// Generated routes (XY, snake) are well-formed by construction, so only
    /// `Custom` paths pay the full validation walk (debug builds re-check
    /// the generated ones too).
    pub fn route_of(&self, pf: &Platform, spg: &Spg, e: EdgeId) -> Result<Vec<DirLink>, String> {
        let edge = spg.edge(e);
        let (from, to) = (self.alloc[edge.src.idx()], self.alloc[edge.dst.idx()]);
        if from == to {
            return Ok(Vec::new());
        }
        // Under link faults, policy routes detour around dead links (see
        // `Platform::route_visit`); an unreachable pair yields an empty
        // path, which the evaluator rejects as unroutable.
        if pf.has_link_faults() {
            if let Some(policy) = self.routes.policy() {
                let mut path = Vec::new();
                pf.route_visit(policy, from, to, |l| path.push(l));
                debug_assert!(path.is_empty() || validate_route(pf, from, to, &path).is_ok());
                return Ok(path);
            }
        }
        let path = match &self.routes {
            RouteSpec::Xy(order) => xy_route(from, to, *order),
            RouteSpec::Snake => snake_route(pf, snake_index(pf, from), snake_index(pf, to)),
            RouteSpec::Shortest => ShortestRouter { topo: pf.topo() }.route(from, to),
            RouteSpec::Custom(map) => {
                let path = map
                    .get(&e)
                    .cloned()
                    .ok_or_else(|| format!("no route for cross-core edge {e:?}"))?;
                validate_route(pf, from, to, &path)?;
                return Ok(path);
            }
        };
        debug_assert!(validate_route(pf, from, to, &path).is_ok());
        Ok(path)
    }

    /// Visitor form of [`Mapping::route_of`]: calls `f` on every hop of the
    /// edge's route without materialising a path vector. This is the
    /// evaluator's fast path — XY and snake hops are generated inline;
    /// `Custom` routes fall back to the validated vector form.
    pub fn for_each_route_hop(
        &self,
        pf: &Platform,
        spg: &Spg,
        e: EdgeId,
        mut f: impl FnMut(DirLink),
    ) -> Result<(), String> {
        let edge = spg.edge(e);
        let (from, to) = (self.alloc[edge.src.idx()], self.alloc[edge.dst.idx()]);
        if from == to {
            return Ok(());
        }
        // Same fault-aware dispatch as `Mapping::route_of`.
        if pf.has_link_faults() {
            if let Some(policy) = self.routes.policy() {
                pf.route_visit(policy, from, to, f);
                return Ok(());
            }
        }
        match &self.routes {
            RouteSpec::Xy(order) => xy_route_visit(from, to, *order, f),
            RouteSpec::Snake => {
                snake_route_visit(pf, snake_index(pf, from), snake_index(pf, to), f)
            }
            RouteSpec::Shortest => shortest_route_visit(&pf.topo(), from, to, f),
            RouteSpec::Custom(_) => {
                for link in self.route_of(pf, spg, e)? {
                    f(link);
                }
            }
        }
        Ok(())
    }

    /// The set of cores that hold at least one stage (the paper's enrolled
    /// set `A`), in flat-index order.
    pub fn active_cores(&self, pf: &Platform) -> Vec<CoreId> {
        let mut seen = vec![false; pf.n_cores()];
        for &c in &self.alloc {
            seen[c.flat(pf.q)] = true;
        }
        pf.cores().filter(|c| seen[c.flat(pf.q)]).collect()
    }

    /// Work assigned to each core (flat order): `w_{u,v} = Σ_{alloc(i)=c} w_i`.
    pub fn core_work(&self, pf: &Platform, spg: &Spg) -> Vec<f64> {
        let mut work = vec![0.0; pf.n_cores()];
        for s in spg.stages() {
            work[self.alloc[s.idx()].flat(pf.q)] += spg.weight(s);
        }
        work
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spg::chain;

    #[test]
    fn all_on_has_single_active_core() {
        let pf = Platform::paper(2, 2);
        let g = chain(&[1.0, 2.0, 3.0], &[1.0, 1.0]);
        let m = Mapping::all_on(&pf, g.n(), CoreId { u: 1, v: 0 });
        assert_eq!(m.active_cores(&pf), vec![CoreId { u: 1, v: 0 }]);
        let work = m.core_work(&pf, &g);
        assert_eq!(work[CoreId { u: 1, v: 0 }.flat(pf.q)], 6.0);
        assert_eq!(work.iter().sum::<f64>(), 6.0);
    }

    #[test]
    fn route_of_same_core_is_empty() {
        let pf = Platform::paper(2, 2);
        let g = chain(&[1.0, 1.0], &[5.0]);
        let m = Mapping::all_on(&pf, g.n(), CoreId { u: 0, v: 0 });
        assert!(m.route_of(&pf, &g, EdgeId(0)).unwrap().is_empty());
    }

    #[test]
    fn custom_route_missing_edge_errors() {
        let pf = Platform::paper(2, 2);
        let g = chain(&[1.0, 1.0], &[5.0]);
        let mut m = Mapping::all_on(&pf, g.n(), CoreId { u: 0, v: 0 });
        m.alloc[1] = CoreId { u: 1, v: 1 };
        m.routes = RouteSpec::Custom(HashMap::new());
        assert!(m.route_of(&pf, &g, EdgeId(0)).is_err());
    }
}
