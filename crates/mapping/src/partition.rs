//! DAG-partition validity (paper §3.3).
//!
//! A mapping induces a partition of the stages into per-core clusters. The
//! paper's *DAG-partition* rule requires the quotient graph — one node per
//! cluster, an edge `A → B` whenever some application edge goes from a stage
//! in `A` to a stage in `B ≠ A` — to be acyclic. (Equivalently: every
//! cluster is *convex*; a stage on a path between two co-clustered stages
//! must join their cluster.)

use std::collections::HashMap;

use cmp_platform::{CoreId, Platform};
use spg::{Spg, StageId};

/// Stages per core, for cores holding at least one stage.
pub fn cluster_members(pf: &Platform, alloc: &[CoreId]) -> HashMap<CoreId, Vec<StageId>> {
    let _ = pf;
    let mut clusters: HashMap<CoreId, Vec<StageId>> = HashMap::new();
    for (i, &c) in alloc.iter().enumerate() {
        clusters.entry(c).or_default().push(StageId(i as u32));
    }
    clusters
}

/// The distinct (source-core, destination-core) pairs induced by the
/// application edges, self-pairs excluded.
pub fn quotient_edges(spg: &Spg, alloc: &[CoreId]) -> Vec<(CoreId, CoreId)> {
    let mut out: Vec<(CoreId, CoreId)> = spg
        .edges()
        .iter()
        .map(|e| (alloc[e.src.idx()], alloc[e.dst.idx()]))
        .filter(|(a, b)| a != b)
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// Whether `alloc` is a DAG-partition mapping: the quotient graph of the
/// clusters is acyclic.
pub fn is_dag_partition(spg: &Spg, alloc: &[CoreId]) -> bool {
    let edges = quotient_edges(spg, alloc);
    // Dense-index the clusters that appear in some quotient edge; isolated
    // clusters cannot be on a cycle.
    let mut nodes: Vec<CoreId> = Vec::with_capacity(edges.len() * 2);
    for &(a, b) in &edges {
        nodes.push(a);
        nodes.push(b);
    }
    nodes.sort_unstable();
    nodes.dedup();
    let idx = |c: CoreId| {
        nodes
            .binary_search(&c)
            .expect("endpoint was collected above")
    };
    let mut indeg = vec![0usize; nodes.len()];
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for &(a, b) in &edges {
        let (a, b) = (idx(a), idx(b));
        succ[a].push(b);
        indeg[b] += 1;
    }
    // Kahn's algorithm: the quotient is acyclic iff every node drains.
    let mut stack: Vec<usize> = (0..nodes.len()).filter(|&i| indeg[i] == 0).collect();
    let mut drained = 0usize;
    while let Some(u) = stack.pop() {
        drained += 1;
        for &v in &succ[u] {
            indeg[v] -= 1;
            if indeg[v] == 0 {
                stack.push(v);
            }
        }
    }
    drained == nodes.len()
}

/// Checks cluster convexity directly from the reachability closure: for all
/// co-clustered `i, j` and any `k` with `i ⤳ k ⤳ j`, `k` must share their
/// cluster. Quotient acyclicity implies convexity; this helper exists for
/// the exact solver's partition enumeration and for cross-checking tests.
pub fn is_convex_partition(spg: &Spg, alloc: &[CoreId], reach: &[Vec<bool>]) -> bool {
    let n = spg.n();
    for i in 0..n {
        for j in 0..n {
            if alloc[i] != alloc[j] || !reach[i][j] {
                continue;
            }
            for k in 0..n {
                if alloc[k] != alloc[i] && reach[i][k] && reach[k][j] {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use spg::{chain, parallel};

    fn pf() -> Platform {
        Platform::paper(2, 2)
    }

    fn c(u: u32, v: u32) -> CoreId {
        CoreId { u, v }
    }

    #[test]
    fn chain_split_is_dag_partition() {
        let g = chain(&[1.0; 4], &[1.0; 3]);
        // First two stages on one core, last two on another.
        let order = g.topo_order();
        let mut alloc = vec![c(0, 0); 4];
        alloc[order[2].idx()] = c(0, 1);
        alloc[order[3].idx()] = c(0, 1);
        assert!(is_dag_partition(&g, &alloc));
        assert_eq!(quotient_edges(&g, &alloc), vec![(c(0, 0), c(0, 1))]);
    }

    #[test]
    fn interleaved_chain_is_not_dag_partition() {
        // S1,S3 on core A; S2,S4 on core B: quotient has A->B and B->A.
        let g = chain(&[1.0; 4], &[1.0; 3]);
        let order = g.topo_order();
        let mut alloc = vec![c(0, 0); 4];
        alloc[order[1].idx()] = c(0, 1);
        alloc[order[3].idx()] = c(0, 1);
        assert!(!is_dag_partition(&g, &alloc));
    }

    #[test]
    fn convexity_agrees_with_quotient_acyclicity_on_chain() {
        let g = chain(&[1.0; 5], &[1.0; 4]);
        let reach = g.reachability();
        let order = g.topo_order();
        // Convex split.
        let mut good = vec![c(0, 0); 5];
        for s in &order[3..] {
            good[s.idx()] = c(1, 1);
        }
        assert!(is_dag_partition(&g, &good));
        assert!(is_convex_partition(&g, &good, &reach));
        // Sandwich: ends together, middle elsewhere.
        let mut bad = vec![c(0, 0); 5];
        bad[order[2].idx()] = c(1, 1);
        assert!(!is_dag_partition(&g, &bad));
        assert!(!is_convex_partition(&g, &bad, &reach));
    }

    #[test]
    fn parallel_branches_may_share_or_split() {
        // Diamond: source, two inner branches, sink.
        let g = parallel(&chain(&[1.0; 3], &[1.0; 2]), &chain(&[1.0; 3], &[1.0; 2]));
        let members = cluster_members(&pf(), &vec![c(0, 0); g.n()]);
        assert_eq!(members.len(), 1);
        // Source, the two branches and the sink on four distinct cores:
        // acyclic (source -> branches -> sink).
        let mut alloc = vec![c(0, 0); g.n()];
        for s in g.stages() {
            let l = g.label(s);
            if s == g.sink() {
                alloc[s.idx()] = c(1, 1);
            } else if l.y == 2 {
                alloc[s.idx()] = c(0, 1);
            } else if l.x == 2 {
                alloc[s.idx()] = c(1, 0);
            }
        }
        assert!(is_dag_partition(&g, &alloc));
        // Source and sink together, both branches elsewhere: source->branch
        // ->sink makes branch cluster both successor and predecessor.
        let mut alloc = vec![c(0, 0); g.n()];
        for s in g.stages() {
            if s != g.source() && s != g.sink() {
                alloc[s.idx()] = c(0, 1);
            }
        }
        assert!(!is_dag_partition(&g, &alloc));
    }

    #[test]
    fn single_cluster_is_trivially_valid() {
        let g = chain(&[1.0; 3], &[1.0; 2]);
        assert!(is_dag_partition(&g, &[c(0, 0); 3]));
        assert!(quotient_edges(&g, &[c(0, 0); 3]).is_empty());
    }
}
