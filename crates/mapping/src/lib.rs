//! # cmp-mapping — mapping representation and cost model
//!
//! Implements the paper's §3.3–§3.5: a mapping allocates every SPG stage to
//! a core (`alloc`), fixes a speed per enrolled core, and routes every
//! inter-core communication over mesh links. A mapping is **valid** for a
//! period bound `T` when
//!
//! * it is a *DAG-partition* mapping: the quotient graph of per-core
//!   clusters is acyclic (§3.3);
//! * every core's computation cycle-time `w_{u,v} / s_{u,v}` is at most `T`
//!   (§3.4);
//! * every directed link's communication cycle-time
//!   `b_{(u,v)→(u',v')} / BW` is at most `T` (§3.4).
//!
//! The energy of a valid mapping (§3.5) is
//! `|A|·P_leak^(comp)·T + Σ (w/s)·P(s) + P_leak^(comm)·T + Σ_links 8·b·E_bit`.
//!
//! [`evaluate::evaluate`] computes all of this and is the single source of
//! truth: every heuristic's output is re-validated here before being
//! reported.

pub mod evaluate;
pub mod latency;
pub mod mapping;
pub mod partition;
pub mod speeds;

pub use evaluate::{evaluate, evaluate_with, Evaluation, LinkLoads, MappingError, REL_TOL};
pub use latency::{latency, latency_lower_bound};
pub use mapping::{Mapping, RouteSpec};
pub use partition::{cluster_members, is_dag_partition, quotient_edges};
pub use speeds::{assign_min_speeds, assign_optimal_speeds};
