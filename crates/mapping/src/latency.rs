//! Per-data-set latency of a mapping.
//!
//! The paper optimises energy under a *period* bound; its companion work
//! (reference \[5\], Benoit/Renaud-Goud/Robert IPDPS 2010) also tracks the
//! **latency** — the end-to-end time of one data set through the mapped
//! pipeline. This module computes it as the longest path through the
//! mapped resources: each stage contributes its computation time
//! `w_i / s`, each cross-core edge contributes its store-and-forward route
//! time `hops · δ / BW`.
//!
//! Latency is reported, never constrained, by this crate's algorithms — it
//! gives downstream users the second performance axis "for free".

use cmp_platform::Platform;
use spg::Spg;

use crate::mapping::Mapping;

/// Longest-path latency of one data set under `mapping`, in seconds.
///
/// Returns an error if the mapping is structurally broken (missing speed or
/// route), mirroring [`crate::evaluate()`]'s checks.
pub fn latency(spg: &Spg, pf: &Platform, mapping: &Mapping) -> Result<f64, String> {
    let n = spg.n();
    // Per-stage processing time.
    let mut ptime = vec![0.0f64; n];
    for s in spg.stages() {
        let f = mapping.alloc[s.idx()].flat(pf.q);
        let k = mapping.speed[f].ok_or_else(|| format!("no speed for stage {s:?}"))?;
        ptime[s.idx()] = spg.weight(s) / pf.power.speed(k).freq;
    }
    // Longest path over the DAG in topological order.
    let order = spg.topo_order();
    let mut finish = vec![0.0f64; n];
    for &u in &order {
        let start = finish[u.idx()];
        let end = start + ptime[u.idx()];
        for (eid, e) in spg.out_edges(u) {
            let route = mapping.route_of(pf, spg, eid)?;
            let comm = route.len() as f64 * pf.link_time(e.volume);
            let arrival = end + comm;
            if arrival > finish[e.dst.idx()] {
                finish[e.dst.idx()] = arrival;
            }
        }
        finish[u.idx()] = end;
    }
    Ok(finish[spg.sink().idx()])
}

/// The latency lower bound of the unmapped workflow: critical path at the
/// fastest speed with free communications. Useful as a normalising
/// baseline.
pub fn latency_lower_bound(spg: &Spg, pf: &Platform) -> f64 {
    let smax = pf.power.max_freq();
    let order = spg.topo_order();
    let mut finish = vec![0.0f64; spg.n()];
    for &u in &order {
        let end = finish[u.idx()] + spg.weight(u) / smax;
        for s in spg.successors(u) {
            if end > finish[s.idx()] {
                finish[s.idx()] = end;
            }
        }
        finish[u.idx()] = end;
    }
    finish[spg.sink().idx()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::RouteSpec;
    use crate::speeds::assign_min_speeds;
    use cmp_platform::{CoreId, RouteOrder};
    use spg::chain;

    #[test]
    fn single_core_latency_is_sum_of_work() {
        let pf = Platform::paper(1, 1);
        let g = chain(&[0.3e9, 0.3e9], &[1e6]);
        let m = Mapping {
            alloc: vec![CoreId { u: 0, v: 0 }; 2],
            speed: vec![Some(4)], // 1 GHz
            routes: RouteSpec::Xy(RouteOrder::RowFirst),
        };
        let l = latency(&g, &pf, &m).unwrap();
        assert!((l - 0.6).abs() < 1e-12);
    }

    #[test]
    fn cross_core_latency_adds_route_time() {
        let pf = Platform::paper(1, 2);
        let g = chain(&[0.3e9, 0.3e9], &[19.2e8]); // 0.1 s on one link
        let order = g.topo_order();
        let mut alloc = vec![CoreId { u: 0, v: 0 }; 2];
        alloc[order[1].idx()] = CoreId { u: 0, v: 1 };
        let speed = assign_min_speeds(&g, &pf, &alloc, 1.0).unwrap();
        let m = Mapping {
            alloc,
            speed,
            routes: RouteSpec::Xy(RouteOrder::RowFirst),
        };
        // Each stage at 0.4 GHz: 0.75 s; plus 0.1 s transfer.
        let l = latency(&g, &pf, &m).unwrap();
        assert!((l - (0.75 + 0.1 + 0.75)).abs() < 1e-12, "latency {l}");
    }

    #[test]
    fn lower_bound_is_a_bound() {
        let pf = Platform::paper(2, 2);
        let g = chain(&[2e8; 5], &[1e5; 4]);
        let m = {
            let alloc = vec![CoreId { u: 0, v: 0 }; 5];
            let speed = assign_min_speeds(&g, &pf, &alloc, 1.0).unwrap();
            Mapping {
                alloc,
                speed,
                routes: RouteSpec::Xy(RouteOrder::RowFirst),
            }
        };
        assert!(latency(&g, &pf, &m).unwrap() >= latency_lower_bound(&g, &pf) - 1e-12);
    }
}
