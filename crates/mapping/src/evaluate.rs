//! Mapping evaluation: validity (period, DAG-partition) and energy.
//!
//! This is the single source of truth for the paper's cost model
//! (§3.4–§3.5). Every heuristic re-validates its output here, so any
//! bookkeeping approximation inside a heuristic is caught before a mapping
//! is ever reported as feasible.

use cmp_platform::{CoreId, DirLink, Platform, RouteTable};
use spg::{EdgeId, Spg};

use crate::mapping::Mapping;
use crate::partition::is_dag_partition;

/// Relative tolerance on period comparisons, absorbing floating-point dust
/// on exact-fit cases (e.g. a cut that equals `T·BW`).
pub const REL_TOL: f64 = 1e-9;

/// Why a mapping is invalid.
#[derive(Debug, Clone, PartialEq)]
pub enum MappingError {
    /// The allocation references a core outside the grid.
    CoreOutOfRange {
        /// The offending stage index.
        stage: usize,
    },
    /// An enrolled core has no speed selected.
    SpeedMissing {
        /// The offending core.
        core: CoreId,
    },
    /// The cluster quotient graph has a cycle (violates §3.3).
    NotDagPartition,
    /// A core's computation cycle-time exceeds the period.
    ComputeOverload {
        /// The offending core.
        core: CoreId,
        /// Its cycle-time `w/s` in seconds.
        cycle_time: f64,
    },
    /// A directed link's communication cycle-time exceeds the period.
    LinkOverload {
        /// The offending link.
        link: DirLink,
        /// Its cycle-time `b/BW` in seconds.
        cycle_time: f64,
    },
    /// A route is missing or malformed.
    BadRoute {
        /// The offending application edge.
        edge: EdgeId,
        /// Human-readable detail.
        detail: String,
    },
    /// A stage is allocated onto a core whose PE is dead.
    DeadCore {
        /// The offending stage index.
        stage: usize,
        /// The dead core.
        core: CoreId,
    },
    /// A route crosses a dead link (only reachable via
    /// [`crate::RouteSpec::Custom`] paths — policy routes detour).
    DeadLink {
        /// The offending application edge.
        edge: EdgeId,
        /// The dead link the route crosses.
        link: DirLink,
    },
    /// No alive route connects an edge's endpoint cores (link faults have
    /// disconnected them).
    Unroutable {
        /// The offending application edge.
        edge: EdgeId,
    },
}

impl std::fmt::Display for MappingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MappingError::CoreOutOfRange { stage } => write!(f, "stage {stage} mapped off-grid"),
            MappingError::SpeedMissing { core } => write!(f, "no speed for enrolled core {core:?}"),
            MappingError::NotDagPartition => write!(f, "cluster quotient graph has a cycle"),
            MappingError::ComputeOverload { core, cycle_time } => {
                write!(
                    f,
                    "core {core:?} compute cycle-time {cycle_time:.3e}s exceeds period"
                )
            }
            MappingError::LinkOverload { link, cycle_time } => {
                write!(
                    f,
                    "link {link:?} cycle-time {cycle_time:.3e}s exceeds period"
                )
            }
            MappingError::BadRoute { edge, detail } => {
                write!(f, "bad route for {edge:?}: {detail}")
            }
            MappingError::DeadCore { stage, core } => {
                write!(f, "stage {stage} mapped onto dead core {core:?}")
            }
            MappingError::DeadLink { edge, link } => {
                write!(f, "route for {edge:?} crosses dead link {link:?}")
            }
            MappingError::Unroutable { edge } => {
                write!(f, "no alive route for {edge:?}")
            }
        }
    }
}

impl std::error::Error for MappingError {}

/// Per-directed-link byte loads, stored flat under [`Platform::link_index`]
/// so the evaluator's accumulation loop is pure indexed arithmetic (the
/// former `HashMap<DirLink, f64>` hashed two `CoreId`s per hop).
#[derive(Debug, Clone)]
pub struct LinkLoads {
    loads: Vec<f64>,
    touched: Vec<bool>,
    /// Distinct touched link indices, in first-touch order.
    used: Vec<u32>,
}

impl LinkLoads {
    /// Empty load table for a platform.
    pub fn new(pf: &Platform) -> Self {
        LinkLoads {
            loads: vec![0.0; pf.n_link_slots()],
            touched: vec![false; pf.n_link_slots()],
            used: Vec::new(),
        }
    }

    /// Adds `bytes` to a link's load.
    #[inline]
    pub fn add(&mut self, pf: &Platform, link: DirLink, bytes: f64) {
        self.add_index(pf.link_index(link), bytes);
    }

    /// Adds `bytes` to the link at a dense [`Platform::link_index`] slot —
    /// the precomputed-route-table fast path, which never touches `DirLink`
    /// coordinates at all.
    #[inline]
    pub fn add_index(&mut self, idx: usize, bytes: f64) {
        self.loads[idx] += bytes;
        if !self.touched[idx] {
            self.touched[idx] = true;
            self.used.push(idx as u32);
        }
    }

    /// Number of links carrying at least one routed edge.
    pub fn len(&self) -> usize {
        self.used.len()
    }

    /// Whether no link is used.
    pub fn is_empty(&self) -> bool {
        self.used.is_empty()
    }

    /// The load of one link in bytes per period (0.0 when unused).
    pub fn get(&self, pf: &Platform, link: DirLink) -> f64 {
        self.loads[pf.link_index(link)]
    }

    /// Iterates over the used links and their loads, in first-touch order.
    /// `pf` must be the platform the table was built for.
    pub fn iter<'a>(&'a self, pf: &'a Platform) -> impl Iterator<Item = (DirLink, f64)> + 'a {
        self.used.iter().map(move |&idx| {
            let link = pf
                .link_from_index(idx as usize)
                .expect("used slots always hold valid links");
            (link, self.loads[idx as usize])
        })
    }
}

/// The full outcome of evaluating a valid mapping.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// Total energy `E = E^(comp) + E^(comm)` in joules (§3.5).
    pub energy: f64,
    /// Dynamic computation energy `Σ (w/s)·P(s)`.
    pub compute_dynamic: f64,
    /// Computation leakage `|A|·P_leak^(comp)·T`.
    pub compute_leak: f64,
    /// Dynamic communication energy `Σ_links 8·b·E_bit`.
    pub comm_dynamic: f64,
    /// Communication leakage `P_leak^(comm)·T`.
    pub comm_leak: f64,
    /// Maximum cycle-time over all resources (≤ period for valid mappings).
    pub max_cycle_time: f64,
    /// Number of enrolled cores `|A|`.
    pub active_cores: usize,
    /// Bytes per period on each used directed link.
    pub link_loads: LinkLoads,
    /// Work per core, flat `u·q+v` order.
    pub core_work: Vec<f64>,
}

/// Validates `mapping` against the period bound and computes its energy,
/// regenerating every route hop by hop. Equivalent to
/// [`evaluate_with`]`(…, None)`; callers holding a solver session should
/// prefer `ea_core::Instance::evaluate_mapping`, which reuses the session's
/// precomputed route table.
pub fn evaluate(
    spg: &Spg,
    pf: &Platform,
    mapping: &Mapping,
    period: f64,
) -> Result<Evaluation, MappingError> {
    evaluate_with(spg, pf, mapping, period, None)
}

/// [`evaluate`] with an optional precomputed [`RouteTable`]: when the table
/// matches the mapping's routing discipline (and the platform's core
/// count), the per-edge link-load accumulation walks the table's packed
/// link-index spans instead of regenerating routes — bit-identical results,
/// since the table stores exactly the hops the visitor would produce, in
/// order. A mismatched or absent table falls back to route generation.
pub fn evaluate_with(
    spg: &Spg,
    pf: &Platform,
    mapping: &Mapping,
    period: f64,
    table: Option<&RouteTable>,
) -> Result<Evaluation, MappingError> {
    assert!(period > 0.0, "period must be positive");
    assert_eq!(mapping.alloc.len(), spg.n(), "alloc length mismatch");
    assert_eq!(
        mapping.speed.len(),
        pf.n_cores(),
        "speed vector length mismatch"
    );
    let tol = 1.0 + REL_TOL;

    for (i, &c) in mapping.alloc.iter().enumerate() {
        if !pf.contains(c) {
            return Err(MappingError::CoreOutOfRange { stage: i });
        }
        if !pf.core_alive(c) {
            return Err(MappingError::DeadCore { stage: i, core: c });
        }
    }
    if !is_dag_partition(spg, &mapping.alloc) {
        return Err(MappingError::NotDagPartition);
    }

    // Computation cycle-times and energy.
    let core_work = mapping.core_work(pf, spg);
    let mut compute_dynamic = 0.0;
    let mut active_cores = 0usize;
    let mut max_cycle_time: f64 = 0.0;
    let mut used = vec![false; pf.n_cores()];
    for &c in &mapping.alloc {
        used[c.flat(pf.q)] = true;
    }
    for core in pf.cores() {
        let f = core.flat(pf.q);
        if !used[f] {
            continue;
        }
        active_cores += 1;
        let Some(k) = mapping.speed[f] else {
            return Err(MappingError::SpeedMissing { core });
        };
        let s = pf.power.speed(k);
        let ct = core_work[f] / s.freq;
        if ct > period * tol {
            return Err(MappingError::ComputeOverload {
                core,
                cycle_time: ct,
            });
        }
        max_cycle_time = max_cycle_time.max(ct);
        compute_dynamic += (core_work[f] / s.freq) * s.power;
    }

    // Link loads and communication energy. With a matching precomputed
    // route table this is a pure slice walk per edge; otherwise each route
    // is regenerated hop by hop.
    let table =
        table.filter(|t| Some(t.policy()) == mapping.routes.policy() && t.matches_platform(pf));
    let mut link_loads = LinkLoads::new(pf);
    let faulted_links = pf.has_link_faults();
    if let Some(t) = table {
        for (k, e) in spg.edges().iter().enumerate() {
            let src = mapping.alloc[e.src.idx()].flat(pf.q);
            let dst = mapping.alloc[e.dst.idx()].flat(pf.q);
            let span = t.links_between(src, dst);
            // A fault-aware table stores an empty route exactly when link
            // faults disconnected the pair (see `Platform::route_visit`).
            if span.is_empty() && src != dst {
                return Err(MappingError::Unroutable {
                    edge: EdgeId(k as u32),
                });
            }
            for &li in span {
                link_loads.add_index(li as usize, e.volume);
            }
        }
    } else {
        for (k, e) in spg.edges().iter().enumerate() {
            let eid = EdgeId(k as u32);
            let mut hops = 0usize;
            let mut dead: Option<DirLink> = None;
            mapping
                .for_each_route_hop(pf, spg, eid, |link| {
                    hops += 1;
                    if faulted_links && dead.is_none() && !pf.link_alive(link) {
                        dead = Some(link);
                    }
                    link_loads.add(pf, link, e.volume)
                })
                .map_err(|detail| MappingError::BadRoute { edge: eid, detail })?;
            if let Some(link) = dead {
                return Err(MappingError::DeadLink { edge: eid, link });
            }
            if hops == 0 && mapping.alloc[e.src.idx()] != mapping.alloc[e.dst.idx()] {
                return Err(MappingError::Unroutable { edge: eid });
            }
        }
    }
    let mut comm_dynamic = 0.0;
    for (link, load) in link_loads.iter(pf) {
        let ct = pf.link_time(load);
        if ct > period * tol {
            return Err(MappingError::LinkOverload {
                link,
                cycle_time: ct,
            });
        }
        max_cycle_time = max_cycle_time.max(ct);
        comm_dynamic += pf.hop_energy(load);
    }

    let compute_leak = active_cores as f64 * pf.power.p_leak * period;
    let comm_leak = pf.p_leak_comm * period;
    Ok(Evaluation {
        energy: compute_dynamic + compute_leak + comm_dynamic + comm_leak,
        compute_dynamic,
        compute_leak,
        comm_dynamic,
        comm_leak,
        max_cycle_time,
        active_cores,
        link_loads,
        core_work,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::RouteSpec;
    use crate::speeds::assign_min_speeds;
    use cmp_platform::RouteOrder;
    use spg::chain;

    fn c(u: u32, v: u32) -> CoreId {
        CoreId { u, v }
    }

    /// All stages on one core at the slowest feasible speed.
    fn simple_mapping(pf: &Platform, g: &Spg, period: f64) -> Mapping {
        let mut m = Mapping::all_on(pf, g.n(), c(0, 0));
        m.speed = assign_min_speeds(g, pf, &m.alloc, period).unwrap();
        m
    }

    #[test]
    fn single_core_energy_matches_formula() {
        let pf = Platform::paper(2, 2);
        let g = chain(&[0.05e9, 0.05e9], &[100.0]);
        let t = 1.0;
        let m = simple_mapping(&pf, &g, t);
        let ev = evaluate(&g, &pf, &m, t).unwrap();
        // 0.1e9 cycles at 0.15 GHz: dynamic (0.1/0.15)*0.08, leak 0.08.
        let expect_dyn = (0.1e9 / 0.15e9) * 0.08;
        assert!((ev.compute_dynamic - expect_dyn).abs() < 1e-12);
        assert!((ev.compute_leak - 0.08).abs() < 1e-12);
        assert_eq!(ev.comm_dynamic, 0.0, "co-located stages send nothing");
        assert_eq!(ev.active_cores, 1);
        assert!((ev.energy - (expect_dyn + 0.08)).abs() < 1e-12);
    }

    #[test]
    fn cross_core_edge_pays_per_hop() {
        let pf = Platform::paper(2, 2);
        let g = chain(&[1.0, 1.0], &[1e6]);
        let mut m = Mapping::all_on(&pf, 2, c(0, 0));
        let order = g.topo_order();
        m.alloc[order[1].idx()] = c(1, 1); // 2 hops away
        m.speed = assign_min_speeds(&g, &pf, &m.alloc, 1.0).unwrap();
        let ev = evaluate(&g, &pf, &m, 1.0).unwrap();
        assert_eq!(ev.link_loads.len(), 2);
        let expect_comm = 2.0 * 8.0 * 1e6 * pf.e_bit;
        assert!((ev.comm_dynamic - expect_comm).abs() < 1e-15);
        assert_eq!(ev.active_cores, 2);
    }

    #[test]
    fn compute_overload_detected() {
        let pf = Platform::paper(1, 1);
        let g = chain(&[2e9, 1.0], &[0.0]);
        let m = Mapping {
            alloc: vec![c(0, 0); 2],
            speed: vec![Some(4)],
            routes: RouteSpec::Xy(RouteOrder::RowFirst),
        };
        match evaluate(&g, &pf, &m, 1.0) {
            Err(MappingError::ComputeOverload { .. }) => {}
            other => panic!("expected overload, got {other:?}"),
        }
    }

    #[test]
    fn link_overload_detected() {
        let pf = Platform::paper(1, 2);
        // One edge of more bytes than BW*T.
        let g = chain(&[1.0, 1.0], &[20e9]);
        let mut m = Mapping::all_on(&pf, 2, c(0, 0));
        let order = g.topo_order();
        m.alloc[order[1].idx()] = c(0, 1);
        m.speed = assign_min_speeds(&g, &pf, &m.alloc, 1.0).unwrap();
        match evaluate(&g, &pf, &m, 1.0) {
            Err(MappingError::LinkOverload { .. }) => {}
            other => panic!("expected link overload, got {other:?}"),
        }
    }

    #[test]
    fn non_dag_partition_rejected() {
        let pf = Platform::paper(1, 2);
        let g = chain(&[1.0; 3], &[1.0, 1.0]);
        let order = g.topo_order();
        let mut m = Mapping::all_on(&pf, 3, c(0, 0));
        m.alloc[order[1].idx()] = c(0, 1); // sandwich
        m.speed = assign_min_speeds(&g, &pf, &m.alloc, 1.0).unwrap();
        assert!(matches!(
            evaluate(&g, &pf, &m, 1.0),
            Err(MappingError::NotDagPartition)
        ));
    }

    #[test]
    fn speed_missing_detected() {
        let pf = Platform::paper(1, 1);
        let g = chain(&[1.0, 1.0], &[0.0]);
        let m = Mapping {
            alloc: vec![c(0, 0); 2],
            speed: vec![None],
            routes: RouteSpec::Xy(RouteOrder::RowFirst),
        };
        assert!(matches!(
            evaluate(&g, &pf, &m, 1.0),
            Err(MappingError::SpeedMissing { .. })
        ));
    }

    #[test]
    fn exact_fit_period_accepted() {
        // Work that exactly saturates the slowest speed for T = 1.
        let pf = Platform::paper(1, 1);
        let g = chain(&[0.075e9, 0.075e9], &[0.0]);
        let m = Mapping {
            alloc: vec![c(0, 0); 2],
            speed: vec![Some(0)],
            routes: RouteSpec::Xy(RouteOrder::RowFirst),
        };
        let ev = evaluate(&g, &pf, &m, 1.0).unwrap();
        assert!((ev.max_cycle_time - 1.0).abs() < 1e-9);
    }

    #[test]
    fn link_loads_flat_table_matches_hops() {
        let pf = Platform::paper(2, 2);
        let mut loads = LinkLoads::new(&pf);
        let l01 = DirLink {
            from: c(0, 0),
            to: c(0, 1),
        };
        let l10 = DirLink {
            from: c(0, 1),
            to: c(0, 0),
        };
        loads.add(&pf, l01, 100.0);
        loads.add(&pf, l01, 50.0);
        loads.add(&pf, l10, 7.0);
        assert_eq!(loads.len(), 2, "two distinct directed links");
        assert_eq!(loads.get(&pf, l01), 150.0);
        assert_eq!(loads.get(&pf, l10), 7.0);
        let collected: Vec<(DirLink, f64)> = loads.iter(&pf).collect();
        assert_eq!(collected, vec![(l01, 150.0), (l10, 7.0)]);
        // Untouched links read as zero load.
        let l_down = DirLink {
            from: c(0, 0),
            to: c(1, 0),
        };
        assert_eq!(loads.get(&pf, l_down), 0.0);
    }

    #[test]
    fn snake_routing_uses_snake_links() {
        let pf = Platform::paper(2, 2);
        let g = chain(&[1.0, 1.0], &[1e3]);
        let order = g.topo_order();
        let mut m = Mapping::all_on(&pf, 2, c(0, 0));
        // Snake position 0 -> position 3 = core (1,0): 3 hops along snake.
        m.alloc[order[1].idx()] = c(1, 0);
        m.routes = RouteSpec::Snake;
        m.speed = assign_min_speeds(&g, &pf, &m.alloc, 1.0).unwrap();
        let ev = evaluate(&g, &pf, &m, 1.0).unwrap();
        assert_eq!(
            ev.link_loads.len(),
            3,
            "snake route has 3 hops, XY would have 1"
        );
    }
}
