//! Per-core speed selection.
//!
//! Given an allocation, the energy-minimal speed assignment is independent
//! per core: the slowest speed whose cycle-time meets the period (paper
//! §5.2's "downgrading" post-pass; also `Ecal` in Theorem 1 and §5.3).

use cmp_platform::{CoreId, Platform};
use spg::Spg;

/// Assigns each enrolled core its slowest feasible speed; unused cores stay
/// off (`None`). Returns `None` if some core's workload cannot meet the
/// period even at the fastest speed.
pub fn assign_min_speeds(
    spg: &Spg,
    pf: &Platform,
    alloc: &[CoreId],
    period: f64,
) -> Option<Vec<Option<usize>>> {
    let mut work = vec![0.0; pf.n_cores()];
    let mut used = vec![false; pf.n_cores()];
    for s in spg.stages() {
        let f = alloc[s.idx()].flat(pf.q);
        work[f] += spg.weight(s);
        used[f] = true;
    }
    let mut speeds = vec![None; pf.n_cores()];
    for f in 0..pf.n_cores() {
        if used[f] {
            speeds[f] = Some(pf.power.min_speed_for(work[f], period)?);
        }
    }
    Some(speeds)
}

/// Assigns each enrolled core its *energy-optimal* feasible speed (argmin
/// `P(s)/s`), instead of the paper's slowest-feasible rule. On power curves
/// with non-monotone `P(s)/s` (like the paper's own XScale table) this is
/// strictly better; exposed for the speed-rule ablation.
pub fn assign_optimal_speeds(
    spg: &Spg,
    pf: &Platform,
    alloc: &[CoreId],
    period: f64,
) -> Option<Vec<Option<usize>>> {
    let mut work = vec![0.0; pf.n_cores()];
    let mut used = vec![false; pf.n_cores()];
    for s in spg.stages() {
        let f = alloc[s.idx()].flat(pf.q);
        work[f] += spg.weight(s);
        used[f] = true;
    }
    let mut speeds = vec![None; pf.n_cores()];
    for f in 0..pf.n_cores() {
        if used[f] {
            speeds[f] = Some(pf.power.best_speed_for(work[f], period)?);
        }
    }
    Some(speeds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spg::chain;

    #[test]
    fn speeds_cover_exactly_used_cores() {
        let pf = Platform::paper(2, 2);
        let g = chain(&[0.1e9, 0.5e9, 0.2e9], &[1.0, 1.0]);
        let order = g.topo_order();
        let mut alloc = vec![CoreId { u: 0, v: 0 }; 3];
        alloc[order[1].idx()] = CoreId { u: 0, v: 1 };
        alloc[order[2].idx()] = CoreId { u: 0, v: 1 };
        let speeds = assign_min_speeds(&g, &pf, &alloc, 1.0).unwrap();
        // Core (0,0): 0.1e9 cycles -> 0.15 GHz (index 0).
        assert_eq!(speeds[0], Some(0));
        // Core (0,1): 0.7e9 cycles -> 0.8 GHz (index 3).
        assert_eq!(speeds[1], Some(3));
        assert_eq!(speeds[2], None);
        assert_eq!(speeds[3], None);
    }

    #[test]
    fn infeasible_period_yields_none() {
        let pf = Platform::paper(1, 2);
        let g = chain(&[3e9, 1.0], &[1.0]);
        let alloc = vec![CoreId { u: 0, v: 0 }; 2];
        assert!(assign_min_speeds(&g, &pf, &alloc, 1.0).is_none());
    }
}
