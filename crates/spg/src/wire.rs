//! Minimal little-endian binary codec for artifact spill files.
//!
//! The serve daemon's persistent artifact cache (`ea_core::serve`) writes
//! derived state — ideal lattices, transition skeletons, route tables — to
//! disk and reads it back across restarts. Each owning crate serialises its
//! own types (dependencies point strictly downward, so the formats cannot
//! live in the daemon), but they all share this codec so the framing rules
//! are written once:
//!
//! * all integers are **little-endian**, floats travel as IEEE-754 bit
//!   patterns;
//! * every variable-length field is length-prefixed (`u64` element count);
//! * decoding is **total**: every read is bounds-checked against the
//!   remaining input and length prefixes are validated against a
//!   per-element minimum size *before* allocating, so a truncated or
//!   corrupted file yields `Err`, never a panic or an OOM allocation.
//!
//! This is deliberately not a general serialisation framework: no schema
//! evolution, no endian negotiation, no nested containers. Spill files are
//! versioned at the envelope level (`ea_core::serve::spill`) and a version
//! bump simply invalidates old files.

/// Appends a `u32` in little-endian order.
#[inline]
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` in little-endian order.
#[inline]
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as its IEEE-754 bit pattern.
#[inline]
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Appends a length-prefixed `u32` slice.
pub fn put_u32_slice(out: &mut Vec<u8>, vs: &[u32]) {
    put_u64(out, vs.len() as u64);
    for &v in vs {
        put_u32(out, v);
    }
}

/// Appends a length-prefixed `u64` slice.
pub fn put_u64_slice(out: &mut Vec<u8>, vs: &[u64]) {
    put_u64(out, vs.len() as u64);
    for &v in vs {
        put_u64(out, v);
    }
}

/// Appends a length-prefixed `f64` slice (bit patterns).
pub fn put_f64_slice(out: &mut Vec<u8>, vs: &[f64]) {
    put_u64(out, vs.len() as u64);
    for &v in vs {
        put_f64(out, v);
    }
}

/// Takes `n` bytes starting at `*pos`, advancing the cursor.
#[inline]
pub fn take<'a>(bytes: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8], String> {
    let end = pos
        .checked_add(n)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| format!("truncated input: need {n} bytes at offset {pos}"))?;
    let s = &bytes[*pos..end];
    *pos = end;
    Ok(s)
}

/// Reads a little-endian `u32`.
#[inline]
pub fn get_u32(bytes: &[u8], pos: &mut usize) -> Result<u32, String> {
    let s = take(bytes, pos, 4)?;
    Ok(u32::from_le_bytes(s.try_into().expect("4-byte slice")))
}

/// Reads a little-endian `u64`.
#[inline]
pub fn get_u64(bytes: &[u8], pos: &mut usize) -> Result<u64, String> {
    let s = take(bytes, pos, 8)?;
    Ok(u64::from_le_bytes(s.try_into().expect("8-byte slice")))
}

/// Reads an `f64` from its bit pattern.
#[inline]
pub fn get_f64(bytes: &[u8], pos: &mut usize) -> Result<f64, String> {
    Ok(f64::from_bits(get_u64(bytes, pos)?))
}

/// Reads a `u64` element count and validates it against the remaining
/// input assuming each element occupies at least `elem_bytes` bytes — the
/// guard that keeps a corrupted length prefix from driving a huge
/// allocation before the per-element reads would fail anyway.
pub fn get_len(bytes: &[u8], pos: &mut usize, elem_bytes: usize) -> Result<usize, String> {
    let n = get_u64(bytes, pos)?;
    let remaining = bytes.len() - *pos;
    if (n as u128) * (elem_bytes.max(1) as u128) > remaining as u128 {
        return Err(format!(
            "length prefix {n} exceeds the {remaining} remaining bytes"
        ));
    }
    Ok(n as usize)
}

/// Reads a length-prefixed `u32` slice.
pub fn get_u32_slice(bytes: &[u8], pos: &mut usize) -> Result<Vec<u32>, String> {
    let n = get_len(bytes, pos, 4)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_u32(bytes, pos)?);
    }
    Ok(out)
}

/// Reads a length-prefixed `u64` slice.
pub fn get_u64_slice(bytes: &[u8], pos: &mut usize) -> Result<Vec<u64>, String> {
    let n = get_len(bytes, pos, 8)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_u64(bytes, pos)?);
    }
    Ok(out)
}

/// Reads a length-prefixed `f64` slice (bit patterns).
pub fn get_f64_slice(bytes: &[u8], pos: &mut usize) -> Result<Vec<f64>, String> {
    let n = get_len(bytes, pos, 8)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_f64(bytes, pos)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 0xdead_beef);
        put_u64(&mut buf, u64::MAX - 1);
        put_f64(&mut buf, -0.0);
        put_f64(&mut buf, f64::INFINITY);
        let mut pos = 0;
        assert_eq!(get_u32(&buf, &mut pos).unwrap(), 0xdead_beef);
        assert_eq!(get_u64(&buf, &mut pos).unwrap(), u64::MAX - 1);
        // -0.0 must survive by bit pattern, not by value.
        assert_eq!(
            get_f64(&buf, &mut pos).unwrap().to_bits(),
            (-0.0f64).to_bits()
        );
        assert_eq!(get_f64(&buf, &mut pos).unwrap(), f64::INFINITY);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn slices_round_trip() {
        let mut buf = Vec::new();
        put_u32_slice(&mut buf, &[1, 2, 3]);
        put_u64_slice(&mut buf, &[]);
        put_f64_slice(&mut buf, &[0.5, -1.25]);
        let mut pos = 0;
        assert_eq!(get_u32_slice(&buf, &mut pos).unwrap(), vec![1, 2, 3]);
        assert_eq!(get_u64_slice(&buf, &mut pos).unwrap(), Vec::<u64>::new());
        assert_eq!(get_f64_slice(&buf, &mut pos).unwrap(), vec![0.5, -1.25]);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn truncated_input_errors_instead_of_panicking() {
        let mut buf = Vec::new();
        put_u32_slice(&mut buf, &[7, 8, 9]);
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert!(
                get_u32_slice(&buf[..cut], &mut pos).is_err(),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn absurd_length_prefix_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        put_u64(&mut buf, u64::MAX); // claims 2^64-1 elements
        let mut pos = 0;
        assert!(get_u64_slice(&buf, &mut pos).is_err());
    }
}
