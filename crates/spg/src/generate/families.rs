//! Parameterised workload families (the campaign engine's scenario axis).
//!
//! The paper's evaluation uses one fixed suite (StreamIt, Table 1) plus the
//! §6.2.2 random SPGs. A handful of fixed graphs hides topology/solver
//! pathologies, so the campaign engine sweeps *families* of synthetic
//! workloads instead: each [`FamilyKind`] is a structurally distinct
//! population, and a [`WorkloadSpec`] — a `(family, params, seed)` triple —
//! deterministically names one member of it. Two `instantiate` calls on
//! equal specs yield byte-identical graphs, which is what makes campaign
//! jobs resumable and shardable (the job key alone reproduces the input).
//!
//! Families:
//!
//! * [`FamilyKind::DeepChain`] — a pure pipeline (elevation 1, `xmax = n`):
//!   the uni-line DP's best case and the placement heuristics' longest
//!   dependence chain;
//! * [`FamilyKind::WideForkJoin`] — `depth` fork-join blocks in series,
//!   each fanning `width` parallel branches (bounded elevation, small
//!   `xmax`): stresses link contention around the fork/join stages;
//! * [`FamilyKind::Balanced`] — recursive series/parallel composition with
//!   exact halvings down to `depth` levels: the homogeneous divide-and-
//!   conquer shape;
//! * [`FamilyKind::Unbalanced`] — the same recursion with seeded skewed
//!   splits and random series/parallel choices: heterogeneous shapes whose
//!   branch weights differ wildly;
//! * [`FamilyKind::TgffMixed`] — a TGFF-style mixed population: elevation
//!   and chain-interleaving probability are themselves drawn from the seed,
//!   then the §6.2.2 exact-size shape builder runs (the closest analogue of
//!   "random task graphs" in the NoC literature).
//!
//! Work and communication are drawn uniformly from the configured ranges
//! and can be rescaled to an exact CCR, exactly like [`super::random_spg`].

use std::fmt;
use std::str::FromStr;

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use super::build_shape;
use crate::compose::{chain, parallel_many, series};
use crate::graph::Spg;

/// A structurally distinct population of series-parallel workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FamilyKind {
    /// Pure pipeline: elevation 1, `xmax = n`.
    DeepChain,
    /// `depth` fork-join blocks in series, `width` branches per block.
    WideForkJoin,
    /// Balanced recursive series/parallel composition (exact halvings).
    Balanced,
    /// Skewed recursive composition with seeded series/parallel choices.
    Unbalanced,
    /// TGFF-style mixed population (seeded elevation and interleaving).
    TgffMixed,
}

impl FamilyKind {
    /// Every family, in the canonical campaign order.
    pub const ALL: [FamilyKind; 5] = [
        FamilyKind::DeepChain,
        FamilyKind::WideForkJoin,
        FamilyKind::Balanced,
        FamilyKind::Unbalanced,
        FamilyKind::TgffMixed,
    ];

    /// Stable kebab-case name (campaign keys, CLI).
    pub fn name(self) -> &'static str {
        match self {
            FamilyKind::DeepChain => "deep-chain",
            FamilyKind::WideForkJoin => "wide-fork-join",
            FamilyKind::Balanced => "balanced",
            FamilyKind::Unbalanced => "unbalanced",
            FamilyKind::TgffMixed => "tgff-mixed",
        }
    }
}

impl fmt::Display for FamilyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for FamilyKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        FamilyKind::ALL
            .into_iter()
            .find(|k| k.name().eq_ignore_ascii_case(s))
            .ok_or_else(|| {
                format!("unknown family '{s}' (expected deep-chain|wide-fork-join|balanced|unbalanced|tgff-mixed)")
            })
    }
}

/// Size and cost-distribution knobs shared by every family.
///
/// `width` and `depth` are *targets*: a family clamps them down when `n` is
/// too small to realise them (a 6-stage graph cannot hold 8 parallel
/// branches), so every `(family, params)` pair with `n >= 2` instantiates
/// — campaign specs never have to special-case small sizes. The stage
/// count `n` is always hit exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilyParams {
    /// Exact number of stages.
    pub n: usize,
    /// Parallel-branch target (fork-join branches per block; maximum
    /// branch count / elevation for the recursive and mixed families).
    pub width: u32,
    /// Structural-depth target (fork-join blocks in series; recursion
    /// levels for the balanced/unbalanced families).
    pub depth: u32,
    /// Uniform range for stage weights `w_i` (cycles per data set).
    pub work_range: (f64, f64),
    /// Uniform range for edge volumes `δ` (bytes per data set).
    pub comm_range: (f64, f64),
    /// If set, rescale all volumes so the graph's CCR is exactly this.
    pub ccr: Option<f64>,
}

impl Default for FamilyParams {
    fn default() -> Self {
        FamilyParams {
            n: 32,
            width: 4,
            depth: 3,
            work_range: (1e5, 1e6),
            comm_range: (1e3, 1e5),
            ccr: None,
        }
    }
}

impl FamilyParams {
    /// Default knobs at a given exact size.
    pub fn sized(n: usize) -> Self {
        FamilyParams {
            n,
            ..FamilyParams::default()
        }
    }
}

/// A deterministic workload name: one member of a family.
///
/// ```
/// use spg::generate::families::{FamilyKind, FamilyParams, WorkloadSpec};
///
/// let spec = WorkloadSpec::new(FamilyKind::WideForkJoin, FamilyParams::sized(18), 7);
/// let a = spec.instantiate();
/// let b = spec.instantiate();
/// assert_eq!(a.n(), 18);
/// assert_eq!(a.weights(), b.weights()); // same spec => same graph
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Which population.
    pub family: FamilyKind,
    /// Size/shape/cost knobs.
    pub params: FamilyParams,
    /// Seed of the instance within the population.
    pub seed: u64,
}

impl WorkloadSpec {
    /// Bundles a `(family, params, seed)` triple.
    pub fn new(family: FamilyKind, params: FamilyParams, seed: u64) -> Self {
        WorkloadSpec {
            family,
            params,
            seed,
        }
    }

    /// Stable identifier (campaign job keys): family, size, shape knobs,
    /// seed. Two specs with equal ids *and equal cost knobs*
    /// (`work_range`, `comm_range`, `ccr`) instantiate identical graphs —
    /// the cost distributions are not encoded here, so a sweep over them
    /// must key on something more (the campaign engine fingerprints them
    /// in its stream-file header).
    pub fn id(&self) -> String {
        format!(
            "{}-n{}-w{}-d{}-s{}",
            self.family, self.params.n, self.params.width, self.params.depth, self.seed
        )
    }

    /// Builds the named workload. Deterministic: the same spec always
    /// yields the same graph, bit for bit.
    ///
    /// # Panics
    /// Panics if `params.n < 2` or a cost range is malformed.
    pub fn instantiate(&self) -> Spg {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        generate_family(self.family, &self.params, &mut rng)
    }
}

/// Generates one member of `kind` with the given knobs, drawing structure
/// and costs from `rng`. Prefer [`WorkloadSpec::instantiate`], which fixes
/// the RNG construction and is what the campaign keys promise.
///
/// # Panics
/// Panics if `params.n < 2` or a cost range is malformed.
pub fn generate_family<R: Rng + ?Sized>(
    kind: FamilyKind,
    params: &FamilyParams,
    rng: &mut R,
) -> Spg {
    assert!(params.n >= 2, "a workload has at least two stages");
    let n = params.n;
    let mut g = match kind {
        FamilyKind::DeepChain => unit_chain(n),
        FamilyKind::WideForkJoin => fork_join_shape(n, params.width, params.depth, rng),
        FamilyKind::Balanced => balanced_shape(n, params.width, params.depth),
        FamilyKind::Unbalanced => unbalanced_shape(n, params.width, params.depth, rng),
        FamilyKind::TgffMixed => tgff_shape(n, params.width, rng),
    };
    debug_assert_eq!(g.n(), n, "family {kind} missed the exact stage count");

    let (wlo, whi) = params.work_range;
    assert!(wlo > 0.0 && whi >= wlo, "bad work range");
    let (vlo, vhi) = params.comm_range;
    assert!(vlo > 0.0 && vhi >= vlo, "bad comm range");
    let weights = (0..g.n()).map(|_| rng.gen_range(wlo..=whi)).collect();
    let volumes = (0..g.n_edges()).map(|_| rng.gen_range(vlo..=vhi)).collect();
    g.set_weights(weights);
    g.set_volumes(volumes);
    if let Some(ccr) = params.ccr {
        g.scale_to_ccr(ccr);
    }
    g
}

fn unit_chain(n: usize) -> Spg {
    chain(&vec![1.0; n], &vec![1.0; n - 1])
}

/// One fork-join block: `width` parallel branches sharing source and sink,
/// branch `i` holding `inner[i]` inner stages. Stage count `2 + Σ inner`.
fn fork_join_block<R: Rng + ?Sized>(n: usize, width: u32, rng: &mut R) -> Spg {
    debug_assert!(n >= width as usize + 2);
    let w = width as usize;
    // Every branch gets one inner stage; the slack lands uniformly.
    let mut inner = vec![1usize; w];
    for _ in 0..(n - 2 - w) {
        inner[rng.gen_range(0..w)] += 1;
    }
    let branches: Vec<Spg> = inner.into_iter().map(|k| unit_chain(k + 2)).collect();
    parallel_many(&branches)
}

/// `depth` fork-join blocks composed in series (adjacent blocks share one
/// stage). Both knobs clamp down until the target size fits; a size below
/// the smallest two-branch block degrades to a chain.
fn fork_join_shape<R: Rng + ?Sized>(n: usize, width: u32, depth: u32, rng: &mut R) -> Spg {
    let mut w = width.max(2);
    let mut blocks = depth.max(1) as usize;
    // Total stages of `blocks` blocks of minimum size: blocks*(w+2) - (blocks-1).
    let min_total = |blocks: usize, w: u32| blocks * (w as usize + 2) - (blocks - 1);
    while blocks > 1 && min_total(blocks, w) > n {
        blocks -= 1;
    }
    while w > 2 && min_total(blocks, w) > n {
        w -= 1;
    }
    if min_total(blocks, w) > n {
        return unit_chain(n); // n < 4: no room for any fork-join
    }
    // Σ block sizes = n + blocks - 1 (series shares one stage per joint).
    let total = n + blocks - 1;
    let base = total / blocks;
    let mut sizes = vec![base; blocks];
    for s in sizes.iter_mut().take(total - base * blocks) {
        *s += 1;
    }
    // The clamps above guarantee total >= blocks*(w+2), so even the
    // floor share meets the per-block minimum.
    debug_assert!(sizes.iter().all(|&s| s >= w as usize + 2));
    let parts: Vec<Spg> = sizes
        .into_iter()
        .map(|nb| fork_join_block(nb, w, rng))
        .collect();
    parts
        .into_iter()
        .reduce(|acc, b| series(&acc, &b))
        .expect("at least one block")
}

/// Balanced recursion: parallel levels split into `width` equal branches
/// (each with at least one inner stage), series levels split in half;
/// levels alternate, starting parallel. Deterministic shape — only the
/// costs are drawn from the RNG.
fn balanced_shape(n: usize, width: u32, depth: u32) -> Spg {
    fn rec(n: usize, width: u32, depth: u32, parallel_turn: bool) -> Spg {
        if depth == 0 || n < 4 {
            return unit_chain(n.max(2));
        }
        if parallel_turn {
            // w branches sharing source+sink: n = Σ n_i - 2(w-1), branch
            // minimum 3 (one inner stage).
            let mut w = width.max(2) as usize;
            while w > 2 && 2 + w > n {
                w -= 1;
            }
            if 2 + w > n {
                return rec(n, width, depth, false);
            }
            let total = n + 2 * (w - 1);
            let base = total / w;
            let mut sizes = vec![base; w];
            for s in sizes.iter_mut().take(total - base * w) {
                *s += 1;
            }
            let branches: Vec<Spg> = sizes
                .into_iter()
                .map(|nb| rec(nb, width, depth - 1, false))
                .collect();
            parallel_many(&branches)
        } else {
            // Two halves sharing one stage: n = n1 + n2 - 1.
            let n1 = (n + 1).div_ceil(2);
            let n2 = n + 1 - n1;
            series(
                &rec(n1, width, depth - 1, true),
                &rec(n2, width, depth - 1, true),
            )
        }
    }
    rec(n, width, depth, true)
}

/// Unbalanced recursion: series/parallel choice and split fractions come
/// from the RNG, so one branch is typically several times the other.
fn unbalanced_shape<R: Rng + ?Sized>(n: usize, width: u32, depth: u32, rng: &mut R) -> Spg {
    if depth == 0 || n < 6 {
        return unit_chain(n.max(2));
    }
    if rng.gen_bool(0.5) {
        // Skewed series split (shares one stage): the short side takes
        // 15–35% of the stages.
        let frac = rng.gen_range(0.15..0.35);
        let n1 = (((n + 1) as f64 * frac) as usize).clamp(2, n - 1);
        let n2 = n + 1 - n1;
        let a = unbalanced_shape(n1, width, depth - 1, rng);
        let b = unbalanced_shape(n2, width, depth - 1, rng);
        if rng.gen_bool(0.5) {
            series(&a, &b)
        } else {
            series(&b, &a)
        }
    } else {
        // Skewed parallel split into 2..=width branches (terminals
        // shared): branch sizes are drawn with a quadratic bias toward
        // the first branch, so one arm dominates the others.
        let inner = n - 2;
        let max_b = (width.max(2) as usize).min(inner);
        let b = if max_b <= 2 {
            2
        } else {
            rng.gen_range(2..=max_b)
        };
        let mut parts = vec![1usize; b];
        for _ in 0..inner - b {
            let skew: f64 = rng.gen_range(0.0..1.0);
            parts[((skew * skew) * b as f64) as usize % b] += 1;
        }
        let branches: Vec<Spg> = parts
            .into_iter()
            .map(|k| unbalanced_shape(k + 2, width, depth - 1, rng))
            .collect();
        parallel_many(&branches)
    }
}

/// TGFF-style mixed shape: the elevation target and the chain-interleaving
/// probability are themselves seeded draws, then the exact-size §6.2.2
/// shape builder runs.
fn tgff_shape<R: Rng + ?Sized>(n: usize, width: u32, rng: &mut R) -> Spg {
    let max_e = (n.saturating_sub(2)).min(width.max(1) as usize).max(1) as u32;
    let e = rng.gen_range(1..=max_e);
    let series_prob = rng.gen_range(0.2..0.7);
    build_shape(n, e, series_prob, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recognize::recognize;

    #[test]
    fn every_family_hits_exact_size_and_is_sp() {
        for kind in FamilyKind::ALL {
            for n in [2usize, 4, 7, 16, 33, 64] {
                let spec = WorkloadSpec::new(kind, FamilyParams::sized(n), 11);
                let g = spec.instantiate();
                assert_eq!(g.n(), n, "{kind} at n={n}");
                g.check_invariants()
                    .unwrap_or_else(|e| panic!("{kind}/{n}: {e}"));
                assert!(
                    recognize(&g).is_series_parallel,
                    "{kind} at n={n} is not series-parallel"
                );
            }
        }
    }

    #[test]
    fn family_shapes() {
        let chain =
            WorkloadSpec::new(FamilyKind::DeepChain, FamilyParams::sized(20), 1).instantiate();
        assert_eq!(chain.elevation(), 1);
        assert_eq!(chain.xmax(), 20);

        let fj =
            WorkloadSpec::new(FamilyKind::WideForkJoin, FamilyParams::sized(20), 1).instantiate();
        assert_eq!(fj.elevation(), 4, "each block fans the full width");
        assert!(fj.xmax() < 20);

        let bal = WorkloadSpec::new(FamilyKind::Balanced, FamilyParams::sized(20), 1).instantiate();
        assert!(bal.elevation() >= 2);
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        for kind in FamilyKind::ALL {
            let spec = WorkloadSpec::new(kind, FamilyParams::sized(24), 5);
            let a = spec.instantiate();
            let b = spec.instantiate();
            assert_eq!(a.weights(), b.weights(), "{kind}");
            assert_eq!(a.labels(), b.labels(), "{kind}");
            let c = WorkloadSpec::new(kind, FamilyParams::sized(24), 6).instantiate();
            assert_ne!(a.weights(), c.weights(), "{kind} ignores the seed");
        }
    }

    #[test]
    fn ccr_is_exact_for_families() {
        for kind in FamilyKind::ALL {
            let params = FamilyParams {
                ccr: Some(3.0),
                ..FamilyParams::sized(18)
            };
            let g = WorkloadSpec::new(kind, params, 2).instantiate();
            assert!((g.ccr() - 3.0).abs() / 3.0 < 1e-9, "{kind}");
        }
    }

    #[test]
    fn names_round_trip() {
        for kind in FamilyKind::ALL {
            assert_eq!(kind.name().parse::<FamilyKind>().unwrap(), kind);
        }
        assert!("nope".parse::<FamilyKind>().is_err());
    }
}
