//! Series and parallel composition with the label rules of paper §3.1.
//!
//! The smallest SPG is the two-node base graph `S1 → S2` with labels
//! `(1,1)` and `(2,1)`. Composition:
//!
//! * **series(a, b)** merges the sink of `a` with the source of `b`; labels
//!   of `b`'s stages get their `x` incremented by `xmax(a) − 1`;
//! * **parallel(a, b)** merges the two sources and the two sinks, the longer
//!   graph (larger `xmax`) providing the merged labels; the *inner* stages of
//!   the shorter graph get their `y` incremented by `ymax` of the longer one.
//!
//! Merged stages take the **sum** of the two constituent weights (the paper
//! builds shapes first and assigns costs to the final stages, so the merge
//! policy is only relevant when composing already-weighted graphs; summing
//! keeps `Σ w_i` invariant).

use crate::graph::{Label, Spg, SpgEdge, StageId};

/// The two-node base SPG `S1 → S2` (paper §3.1).
pub fn base(w_src: f64, w_sink: f64, volume: f64) -> Spg {
    Spg::from_parts(
        vec![w_src, w_sink],
        vec![Label { x: 1, y: 1 }, Label { x: 2, y: 1 }],
        vec![SpgEdge {
            src: StageId(0),
            dst: StageId(1),
            volume,
        }],
    )
}

/// A linear chain of `weights.len()` stages; `volumes[i]` is the volume of
/// the edge between consecutive stages `i` and `i+1`.
///
/// # Panics
/// Panics unless `weights.len() >= 2` and `volumes.len() == weights.len()-1`.
pub fn chain(weights: &[f64], volumes: &[f64]) -> Spg {
    assert!(weights.len() >= 2, "a chain has at least two stages");
    assert_eq!(volumes.len(), weights.len() - 1);
    let labels = (0..weights.len())
        .map(|i| Label {
            x: i as u32 + 1,
            y: 1,
        })
        .collect();
    let edges = volumes
        .iter()
        .enumerate()
        .map(|(i, &v)| SpgEdge {
            src: StageId(i as u32),
            dst: StageId(i as u32 + 1),
            volume: v,
        })
        .collect();
    Spg::from_parts(weights.to_vec(), labels, edges)
}

/// Series composition: the sink of `a` is merged with the source of `b`
/// (paper §3.1). The merged stage weight is the sum of the two.
pub fn series(a: &Spg, b: &Spg) -> Spg {
    let na = a.n();
    let shift = a.xmax() - 1;
    // Stage mapping: a's stages keep their ids; b's stages (except its
    // source, which becomes a's sink) are appended.
    let mut b_map: Vec<StageId> = Vec::with_capacity(b.n());
    let mut weights: Vec<f64> = a.weights().to_vec();
    let mut labels: Vec<Label> = a.labels().to_vec();
    for i in b.stages() {
        if i == b.source() {
            b_map.push(a.sink());
            weights[a.sink().idx()] += b.weight(i);
        } else {
            let id = StageId(weights.len() as u32);
            b_map.push(id);
            weights.push(b.weight(i));
            let l = b.label(i);
            labels.push(Label {
                x: l.x + shift,
                y: l.y,
            });
        }
    }
    debug_assert_eq!(b_map.len(), b.n());
    let mut edges: Vec<SpgEdge> = a.edges().to_vec();
    edges.extend(b.edges().iter().map(|e| SpgEdge {
        src: b_map[e.src.idx()],
        dst: b_map[e.dst.idx()],
        volume: e.volume,
    }));
    debug_assert_eq!(weights.len(), na + b.n() - 1);
    Spg::from_parts(weights, labels, edges)
}

/// Parallel composition: sources merged, sinks merged (paper §3.1). The
/// graph with the larger `xmax` provides the merged source/sink labels and
/// keeps its labels; the inner stages of the other get `y += ymax(longer)`.
/// Merged stage weights are summed.
pub fn parallel(a: &Spg, b: &Spg) -> Spg {
    // Paper: "assume x_n1 >= x_n2, otherwise exchange the two SPGs".
    let (a, b) = if a.xmax() >= b.xmax() { (a, b) } else { (b, a) };
    let y_shift = a.elevation();
    let mut weights: Vec<f64> = a.weights().to_vec();
    let mut labels: Vec<Label> = a.labels().to_vec();
    let mut b_map: Vec<StageId> = Vec::with_capacity(b.n());
    for i in b.stages() {
        if i == b.source() {
            b_map.push(a.source());
            weights[a.source().idx()] += b.weight(i);
        } else if i == b.sink() {
            b_map.push(a.sink());
            weights[a.sink().idx()] += b.weight(i);
        } else {
            let id = StageId(weights.len() as u32);
            b_map.push(id);
            weights.push(b.weight(i));
            let l = b.label(i);
            labels.push(Label {
                x: l.x,
                y: l.y + y_shift,
            });
        }
    }
    let mut edges: Vec<SpgEdge> = a.edges().to_vec();
    edges.extend(b.edges().iter().map(|e| SpgEdge {
        src: b_map[e.src.idx()],
        dst: b_map[e.dst.idx()],
        volume: e.volume,
    }));
    debug_assert_eq!(weights.len(), a.n() + b.n() - 2);
    Spg::from_parts(weights, labels, edges)
}

/// Folds a parallel composition over several SPGs (source/sink shared by
/// all). Equivalent to repeated [`parallel`].
///
/// # Panics
/// Panics on an empty slice.
pub fn parallel_many(graphs: &[Spg]) -> Spg {
    let (first, rest) = graphs
        .split_first()
        .expect("parallel_many needs at least one SPG");
    rest.iter().fold(first.clone(), |acc, g| parallel(&acc, g))
}

/// Folds a series composition over several SPGs.
///
/// # Panics
/// Panics on an empty slice.
pub fn series_many(graphs: &[Spg]) -> Spg {
    let (first, rest) = graphs
        .split_first()
        .expect("series_many needs at least one SPG");
    rest.iter().fold(first.clone(), |acc, g| series(&acc, g))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn label_set(g: &Spg) -> BTreeSet<(u32, u32)> {
        g.labels().iter().map(|l| (l.x, l.y)).collect()
    }

    fn uniform_chain(n: usize) -> Spg {
        chain(&vec![1.0; n], &vec![1.0; n - 1])
    }

    /// SPG1 of paper Figure 1: labels {(1,1),(2,1),(3,1),(4,1),(2,2)}.
    fn figure1_spg1() -> Spg {
        series(
            &parallel(&uniform_chain(3), &uniform_chain(3)),
            &base(1.0, 1.0, 1.0),
        )
    }

    /// SPG2 of paper Figure 1: labels {(1,1),(2,1),(3,1),(2,2),(2,3)}.
    fn figure1_spg2() -> Spg {
        parallel_many(&[uniform_chain(3), uniform_chain(3), uniform_chain(3)])
    }

    #[test]
    fn figure1_components() {
        let g1 = figure1_spg1();
        assert_eq!(
            label_set(&g1),
            [(1, 1), (2, 1), (3, 1), (4, 1), (2, 2)]
                .into_iter()
                .collect()
        );
        let g2 = figure1_spg2();
        assert_eq!(
            label_set(&g2),
            [(1, 1), (2, 1), (3, 1), (2, 2), (2, 3)]
                .into_iter()
                .collect()
        );
    }

    #[test]
    fn figure1_series_composition() {
        // Paper Figure 1, series composition of SPG1 and SPG2:
        // {(1,1),(2,1),(2,2),(3,1),(4,1),(5,1),(6,1),(5,2),(5,3)}.
        let g = series(&figure1_spg1(), &figure1_spg2());
        assert_eq!(
            label_set(&g),
            [
                (1, 1),
                (2, 1),
                (2, 2),
                (3, 1),
                (4, 1),
                (5, 1),
                (6, 1),
                (5, 2),
                (5, 3)
            ]
            .into_iter()
            .collect()
        );
        assert_eq!(g.n(), 9);
        assert_eq!(g.elevation(), 3);
        assert_eq!(g.xmax(), 6);
        g.check_invariants().unwrap();
    }

    #[test]
    fn figure1_parallel_composition() {
        // Paper Figure 1, parallel composition of SPG1 and SPG2:
        // {(1,1),(2,1),(3,1),(4,1),(2,2),(2,3),(2,4),(2,5)}.
        let g = parallel(&figure1_spg1(), &figure1_spg2());
        assert_eq!(
            label_set(&g),
            [
                (1, 1),
                (2, 1),
                (3, 1),
                (4, 1),
                (2, 2),
                (2, 3),
                (2, 4),
                (2, 5)
            ]
            .into_iter()
            .collect()
        );
        assert_eq!(g.n(), 8);
        assert_eq!(g.elevation(), 5);
        assert_eq!(g.xmax(), 4);
        g.check_invariants().unwrap();
    }

    #[test]
    fn parallel_swaps_shorter_first_argument() {
        // parallel() must be symmetric up to stage numbering.
        let a = uniform_chain(3);
        let b = uniform_chain(5);
        let g1 = parallel(&a, &b);
        let g2 = parallel(&b, &a);
        assert_eq!(label_set(&g1), label_set(&g2));
        assert_eq!(g1.xmax(), 5);
        assert_eq!(g1.elevation(), 2);
    }

    #[test]
    fn series_preserves_total_work() {
        let a = figure1_spg1();
        let b = figure1_spg2();
        let g = series(&a, &b);
        assert!((g.total_work() - (a.total_work() + b.total_work())).abs() < 1e-12);
        let p = parallel(&a, &b);
        assert!((p.total_work() - (a.total_work() + b.total_work())).abs() < 1e-12);
    }

    #[test]
    fn parallel_of_bases_gives_multi_edge() {
        let g = parallel(&base(1.0, 1.0, 2.0), &base(1.0, 1.0, 3.0));
        assert_eq!(g.n(), 2);
        assert_eq!(g.n_edges(), 2);
        assert_eq!(g.total_comm(), 5.0);
        g.check_invariants().unwrap();
    }

    #[test]
    fn elevation_adds_under_parallel() {
        let g1 = figure1_spg1(); // elevation 2
        let g2 = figure1_spg2(); // elevation 3
        assert_eq!(parallel(&g1, &g2).elevation(), 5);
        assert_eq!(series(&g1, &g2).elevation(), 3);
    }

    #[test]
    fn fork_join_shape() {
        // Fork-join of k branches (Proposition 1's gadget, with one inner
        // node per branch realised as 3-stage chains in parallel).
        let k = 6;
        let branches: Vec<Spg> = (0..k).map(|_| uniform_chain(3)).collect();
        let g = parallel_many(&branches);
        assert_eq!(g.n(), k + 2);
        assert_eq!(g.elevation(), k as u32);
        assert_eq!(g.xmax(), 3);
        g.check_invariants().unwrap();
    }
}
