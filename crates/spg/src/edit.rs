//! Structure-preserving workload edits.
//!
//! Production streaming workloads get *retuned* far more often than they
//! get restructured: a stage's measured cycle count drifts after a code
//! change, or a compression tweak moves an edge's byte volume. Both leave
//! the SP-tree — and therefore the enumerated ideal lattice's *structure*
//! — untouched, which is what makes incremental re-solve possible:
//! `ea_core::Instance::with_edit` reuses every structure-keyed cached
//! artifact and recomputes only the value-derived ones (see
//! `docs/fault-model.md` for the exact invalidation matrix).

use crate::graph::{EdgeId, Spg, StageId};

/// A local, structure-preserving edit of one SPG parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Edit {
    /// Reset one stage's work requirement (cycles per data set).
    Retune {
        /// The stage to retune.
        stage: StageId,
        /// Its new work in cycles (finite, non-negative).
        work: f64,
    },
    /// Reset one edge's communication volume (bytes per data set).
    SetVolume {
        /// The edge to retarget.
        edge: EdgeId,
        /// Its new volume in bytes (finite, non-negative).
        volume: f64,
    },
}

impl Edit {
    /// Whether this edit changes edge volumes (and therefore every cached
    /// cut volume), as opposed to stage weights only.
    pub fn changes_volumes(&self) -> bool {
        matches!(self, Edit::SetVolume { .. })
    }
}

impl Spg {
    /// A copy of this graph with one [`Edit`] applied. The graph structure
    /// (stages, edges, SP-tree shape) is untouched, so all
    /// structure-derived state of the original remains valid for the copy.
    ///
    /// # Panics
    /// Panics when the stage/edge is out of range or the new value is not
    /// finite and non-negative (via the weight/volume setters).
    pub fn with_edit(&self, edit: &Edit) -> Spg {
        let mut g = self.clone();
        match *edit {
            Edit::Retune { stage, work } => {
                let mut w = g.weights().to_vec();
                assert!(stage.idx() < w.len(), "retuned stage out of range");
                w[stage.idx()] = work;
                g.set_weights(w);
            }
            Edit::SetVolume { edge, volume } => {
                let mut v: Vec<f64> = g.edges().iter().map(|e| e.volume).collect();
                assert!(edge.idx() < v.len(), "edited edge out of range");
                v[edge.idx()] = volume;
                g.set_volumes(v);
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compose::chain;

    #[test]
    fn retune_changes_one_weight_only() {
        let g = chain(&[1.0, 2.0, 3.0], &[10.0, 20.0]);
        let order = g.topo_order();
        let e = g.with_edit(&Edit::Retune {
            stage: order[1],
            work: 9.0,
        });
        assert_eq!(e.weight(order[1]), 9.0);
        assert_eq!(e.weight(order[0]), g.weight(order[0]));
        assert_eq!(e.n(), g.n());
        assert_eq!(e.total_work(), 1.0 + 9.0 + 3.0);
        // Volumes untouched.
        assert_eq!(
            e.edges().iter().map(|x| x.volume).collect::<Vec<_>>(),
            g.edges().iter().map(|x| x.volume).collect::<Vec<_>>()
        );
    }

    #[test]
    fn set_volume_changes_one_edge_only() {
        let g = chain(&[1.0, 2.0, 3.0], &[10.0, 20.0]);
        let e = g.with_edit(&Edit::SetVolume {
            edge: EdgeId(1),
            volume: 5.0,
        });
        assert_eq!(e.edge(EdgeId(1)).volume, 5.0);
        assert_eq!(e.edge(EdgeId(0)).volume, g.edge(EdgeId(0)).volume);
        assert_eq!(e.weights(), g.weights());
        assert!(Edit::SetVolume {
            edge: EdgeId(1),
            volume: 5.0
        }
        .changes_volumes());
    }

    #[test]
    #[should_panic]
    fn negative_weight_rejected() {
        let g = chain(&[1.0, 2.0], &[10.0]);
        let order = g.topo_order();
        let _ = g.with_edit(&Edit::Retune {
            stage: order[0],
            work: -1.0,
        });
    }
}
