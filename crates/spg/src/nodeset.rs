//! A compact fixed-capacity bit set over stage indices.
//!
//! Used to represent *admissible subgraphs* (order ideals) and clusters in
//! the dynamic-programming heuristics. The capacity is fixed at creation
//! (the `n` of the SPG); all binary operations require equal capacities.
//!
//! Storage is adaptive: sets over at most [`INLINE_CAPACITY`] elements keep
//! their words inline (no heap allocation — the common case, since the
//! paper's workloads top out at 150 stages and the DP heuristics clone and
//! hash these sets in their innermost loops); larger capacities fall back
//! to a heap vector behind the same API. [`NodeSetRef`] is the borrowed
//! view used by the interned ideal lattice to hand out sets without
//! materialising a `NodeSet`.

use std::fmt;
use std::hash::{Hash, Hasher};

/// Largest capacity stored without heap allocation (two 64-bit words).
pub const INLINE_CAPACITY: usize = 128;

const INLINE_WORDS: usize = INLINE_CAPACITY / 64;

#[derive(Clone)]
enum Repr {
    /// Capacities `0..=INLINE_CAPACITY`: words live in the set itself.
    Inline([u64; INLINE_WORDS]),
    /// Larger capacities: heap-allocated words.
    Heap(Vec<u64>),
}

/// Fixed-capacity bit set over `0..capacity`.
#[derive(Clone)]
pub struct NodeSet {
    repr: Repr,
    capacity: u32,
}

#[inline]
fn words_for(capacity: usize) -> usize {
    capacity.div_ceil(64)
}

impl NodeSet {
    /// Empty set with room for `capacity` elements.
    pub fn new(capacity: usize) -> Self {
        let repr = if capacity <= INLINE_CAPACITY {
            Repr::Inline([0; INLINE_WORDS])
        } else {
            Repr::Heap(vec![0; words_for(capacity)])
        };
        NodeSet {
            repr,
            capacity: capacity as u32,
        }
    }

    /// Full set `{0, .., capacity-1}`.
    pub fn full(capacity: usize) -> Self {
        let mut s = Self::new(capacity);
        for w in 0..words_for(capacity) {
            let bits = capacity - w * 64;
            s.words_mut()[w] = if bits >= 64 {
                u64::MAX
            } else {
                (1u64 << bits) - 1
            };
        }
        s
    }

    /// Rebuilds a set from raw words (little-endian bit order), as stored by
    /// the ideal-lattice arena.
    pub fn from_words(words: &[u64], capacity: usize) -> Self {
        debug_assert_eq!(words.len(), words_for(capacity));
        let mut s = Self::new(capacity);
        s.words_mut().copy_from_slice(words);
        s
    }

    /// The fixed capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity as usize
    }

    /// Approximate resident size in bytes (the set itself plus any heap
    /// words) — input to cache byte accounting.
    pub fn size_bytes(&self) -> usize {
        let heap = match &self.repr {
            Repr::Inline(_) => 0,
            Repr::Heap(words) => words.capacity() * std::mem::size_of::<u64>(),
        };
        std::mem::size_of::<NodeSet>() + heap
    }

    /// The backing words; only the low `capacity` bits are meaningful.
    #[inline]
    pub fn words(&self) -> &[u64] {
        match &self.repr {
            Repr::Inline(a) => &a[..words_for(self.capacity as usize)],
            Repr::Heap(v) => v,
        }
    }

    #[inline]
    fn words_mut(&mut self) -> &mut [u64] {
        let n = words_for(self.capacity as usize);
        match &mut self.repr {
            Repr::Inline(a) => &mut a[..n],
            Repr::Heap(v) => v,
        }
    }

    /// A cheap borrowed view (what the interned lattice hands out).
    #[inline]
    pub fn as_set(&self) -> NodeSetRef<'_> {
        NodeSetRef {
            words: self.words(),
            capacity: self.capacity,
        }
    }

    /// Overwrites `self` with the contents of a borrowed set of the same
    /// capacity (no allocation).
    #[inline]
    pub fn clone_from_ref(&mut self, other: NodeSetRef<'_>) {
        debug_assert_eq!(self.capacity, other.capacity);
        self.words_mut().copy_from_slice(other.words);
    }

    /// Inserts `i`; returns whether it was newly inserted.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.capacity());
        let (w, b) = (i / 64, i % 64);
        let words = self.words_mut();
        let fresh = words[w] & (1 << b) == 0;
        words[w] |= 1 << b;
        fresh
    }

    /// Removes `i`; returns whether it was present.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        debug_assert!(i < self.capacity());
        let (w, b) = (i / 64, i % 64);
        let words = self.words_mut();
        let present = words[w] & (1 << b) != 0;
        words[w] &= !(1 << b);
        present
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        self.as_set().contains(i)
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.as_set().len()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.as_set().is_empty()
    }

    /// `self ⊆ other`.
    pub fn is_subset(&self, other: &NodeSet) -> bool {
        self.as_set().is_subset(other.as_set())
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &NodeSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        match (&mut self.repr, &other.repr) {
            (Repr::Inline(a), Repr::Inline(b)) => {
                for (x, y) in a.iter_mut().zip(b) {
                    *x |= y;
                }
            }
            _ => {
                for (x, y) in self.words_mut().iter_mut().zip(other.words()) {
                    *x |= y;
                }
            }
        }
    }

    /// In-place difference `self \ other`.
    pub fn difference_with(&mut self, other: &NodeSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        match (&mut self.repr, &other.repr) {
            (Repr::Inline(a), Repr::Inline(b)) => {
                for (x, y) in a.iter_mut().zip(b) {
                    *x &= !y;
                }
            }
            _ => {
                for (x, y) in self.words_mut().iter_mut().zip(other.words()) {
                    *x &= !y;
                }
            }
        }
    }

    /// New set `self \ other`.
    pub fn difference(&self, other: &NodeSet) -> NodeSet {
        let mut s = self.clone();
        s.difference_with(other);
        s
    }

    /// New set `self ∪ other`.
    pub fn union(&self, other: &NodeSet) -> NodeSet {
        let mut s = self.clone();
        s.union_with(other);
        s
    }

    /// Whether the sets intersect.
    pub fn intersects(&self, other: &NodeSet) -> bool {
        self.as_set().intersects(other.as_set())
    }

    /// Iterates over the elements in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.as_set().iter()
    }
}

impl PartialEq for NodeSet {
    fn eq(&self, other: &Self) -> bool {
        self.capacity == other.capacity && self.words() == other.words()
    }
}

impl Eq for NodeSet {}

impl Hash for NodeSet {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.capacity.hash(state);
        self.words().hash(state);
    }
}

impl fmt::Debug for NodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for NodeSet {
    /// Collects indices into a set sized to the maximum index + 1. Prefer
    /// [`NodeSet::new`] + inserts when the capacity must match a graph.
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().max().map_or(0, |m| m + 1);
        let mut s = NodeSet::new(cap);
        for i in items {
            s.insert(i);
        }
        s
    }
}

/// A borrowed, read-only node set: a word slice plus its capacity.
///
/// This is what [`crate::ideal::IdealLattice`] hands out — iterating the
/// lattice or following DP transitions never clones a [`NodeSet`].
#[derive(Clone, Copy)]
pub struct NodeSetRef<'a> {
    words: &'a [u64],
    capacity: u32,
}

impl<'a> NodeSetRef<'a> {
    /// Wraps raw words (as stored in the lattice arena).
    #[inline]
    pub fn from_words(words: &'a [u64], capacity: usize) -> Self {
        debug_assert_eq!(words.len(), words_for(capacity));
        NodeSetRef {
            words,
            capacity: capacity as u32,
        }
    }

    /// The fixed capacity.
    #[inline]
    pub fn capacity(self) -> usize {
        self.capacity as usize
    }

    /// The backing words.
    #[inline]
    pub fn words(self) -> &'a [u64] {
        self.words
    }

    /// Membership test.
    #[inline]
    pub fn contains(self, i: usize) -> bool {
        debug_assert!(i < self.capacity());
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Number of elements.
    #[inline]
    pub fn len(self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `self ⊆ other`.
    pub fn is_subset(self, other: NodeSetRef<'_>) -> bool {
        debug_assert_eq!(self.capacity, other.capacity);
        self.words.iter().zip(other.words).all(|(a, b)| a & !b == 0)
    }

    /// Whether the sets intersect.
    pub fn intersects(self, other: NodeSetRef<'_>) -> bool {
        debug_assert_eq!(self.capacity, other.capacity);
        self.words.iter().zip(other.words).any(|(a, b)| a & b != 0)
    }

    /// Iterates over the elements in increasing order.
    pub fn iter(self) -> impl Iterator<Item = usize> + 'a {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// Iterates over `self \ other` in increasing order, without building
    /// either set (used to list DP cluster members).
    pub fn difference_iter(self, other: NodeSetRef<'a>) -> impl Iterator<Item = usize> + 'a {
        debug_assert_eq!(self.capacity, other.capacity);
        self.words
            .iter()
            .zip(other.words)
            .enumerate()
            .flat_map(|(wi, (&a, &b))| {
                let mut w = a & !b;
                std::iter::from_fn(move || {
                    if w == 0 {
                        None
                    } else {
                        let bit = w.trailing_zeros() as usize;
                        w &= w - 1;
                        Some(wi * 64 + bit)
                    }
                })
            })
    }

    /// Materialises an owned copy.
    pub fn to_owned_set(self) -> NodeSet {
        NodeSet::from_words(self.words, self.capacity as usize)
    }
}

impl fmt::Debug for NodeSetRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = NodeSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64));
        assert_eq!(s.len(), 3);
        assert!(s.contains(129));
        assert!(!s.contains(1));
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn subset_and_ops() {
        let mut a = NodeSet::new(100);
        let mut b = NodeSet::new(100);
        for i in [3, 17, 64, 99] {
            b.insert(i);
        }
        a.insert(17);
        a.insert(99);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        let d = b.difference(&a);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![3, 64]);
        let u = a.union(&d);
        assert_eq!(u, b);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&d));
    }

    #[test]
    fn iter_order_and_full() {
        let s = NodeSet::full(70);
        assert_eq!(s.len(), 70);
        let v: Vec<usize> = s.iter().collect();
        assert_eq!(v, (0..70).collect::<Vec<_>>());
    }

    #[test]
    fn empty_set() {
        let s = NodeSet::new(10);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }

    /// Word-level behaviour exactly at and across the 64-bit boundary, for
    /// both the inline and the heap representation.
    #[test]
    fn word_boundary_ops() {
        for cap in [64usize, 65, 127, 128, 129, 192] {
            let mut s = NodeSet::new(cap);
            s.insert(63);
            assert!(s.contains(63), "cap {cap}");
            assert_eq!(s.words()[0], 1 << 63);
            if cap > 64 {
                s.insert(64);
                assert!(s.contains(64));
                assert_eq!(s.words()[1] & 1, 1);
                assert_eq!(s.len(), 2);
                assert!(s.remove(64));
                assert_eq!(s.words()[1], 0);
            }
            // Full set has exactly `cap` bits and a clean top word.
            let f = NodeSet::full(cap);
            assert_eq!(f.len(), cap);
            let top_bits = cap - (f.words().len() - 1) * 64;
            if top_bits < 64 {
                assert_eq!(f.words().last().unwrap() >> top_bits, 0, "cap {cap}");
            }
        }
    }

    /// Union / difference across the word boundary, inline and heap reprs.
    #[test]
    fn union_difference_across_words() {
        for cap in [100usize, 128, 200] {
            let mut a = NodeSet::new(cap);
            let mut b = NodeSet::new(cap);
            for i in [0, 63, 64, cap - 1] {
                a.insert(i);
            }
            for i in [63, 64, 65] {
                b.insert(i);
            }
            let u = a.union(&b);
            for i in [0, 63, 64, 65, cap - 1] {
                assert!(u.contains(i), "cap {cap}, bit {i}");
            }
            let d = a.difference(&b);
            assert!(d.contains(0) && d.contains(cap - 1));
            assert!(!d.contains(63) && !d.contains(64));
        }
    }

    /// The inline and heap representations agree through the whole API.
    #[test]
    fn inline_and_heap_agree() {
        let bits = [0usize, 1, 31, 63, 64, 65, 100, 127];
        let mut large = NodeSet::new(300);
        let mut small128 = NodeSet::new(128);
        for &b in &bits {
            large.insert(b);
            small128.insert(b);
        }
        assert_eq!(
            small128.iter().collect::<Vec<_>>(),
            large.iter().collect::<Vec<_>>()
        );
        assert_eq!(small128.len(), large.len());
        // Hash/Eq consistency within one capacity.
        let mut other = NodeSet::new(128);
        for &b in &bits {
            other.insert(b);
        }
        assert_eq!(small128, other);
        use std::collections::hash_map::DefaultHasher;
        let h = |s: &NodeSet| {
            let mut hh = DefaultHasher::new();
            s.hash(&mut hh);
            hh.finish()
        };
        assert_eq!(h(&small128), h(&other));
    }

    #[test]
    fn ref_view_matches_owned() {
        let mut s = NodeSet::new(150);
        for i in [2, 63, 64, 100, 149] {
            s.insert(i);
        }
        let r = s.as_set();
        assert_eq!(r.capacity(), 150);
        assert_eq!(r.len(), s.len());
        assert_eq!(r.iter().collect::<Vec<_>>(), s.iter().collect::<Vec<_>>());
        assert!(r.contains(64) && !r.contains(65));
        let back = r.to_owned_set();
        assert_eq!(back, s);
        // clone_from_ref round-trip.
        let mut t = NodeSet::new(150);
        t.clone_from_ref(r);
        assert_eq!(t, s);
    }

    #[test]
    fn difference_iter_matches_difference() {
        let mut a = NodeSet::new(130);
        let mut b = NodeSet::new(130);
        for i in [1, 63, 64, 90, 129] {
            a.insert(i);
        }
        for i in [63, 90] {
            b.insert(i);
        }
        let via_iter: Vec<usize> = a.as_set().difference_iter(b.as_set()).collect();
        let via_set: Vec<usize> = a.difference(&b).iter().collect();
        assert_eq!(via_iter, via_set);
        assert_eq!(via_iter, vec![1, 64, 129]);
    }
}
