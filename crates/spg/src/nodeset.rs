//! A compact fixed-capacity bit set over stage indices.
//!
//! Used to represent *admissible subgraphs* (order ideals) and clusters in
//! the dynamic-programming heuristics. The capacity is fixed at creation
//! (the `n` of the SPG); all binary operations require equal capacities.

use std::fmt;

/// Fixed-capacity bit set over `0..capacity`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct NodeSet {
    words: Vec<u64>,
    capacity: u32,
}

impl NodeSet {
    /// Empty set with room for `capacity` elements.
    pub fn new(capacity: usize) -> Self {
        NodeSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity: capacity as u32,
        }
    }

    /// Full set `{0, .., capacity-1}`.
    pub fn full(capacity: usize) -> Self {
        let mut s = Self::new(capacity);
        for i in 0..capacity {
            s.insert(i);
        }
        s
    }

    /// The fixed capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity as usize
    }

    /// Inserts `i`; returns whether it was newly inserted.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.capacity());
        let (w, b) = (i / 64, i % 64);
        let fresh = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        fresh
    }

    /// Removes `i`; returns whether it was present.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        debug_assert!(i < self.capacity());
        let (w, b) = (i / 64, i % 64);
        let present = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        present
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.capacity());
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `self ⊆ other`.
    pub fn is_subset(&self, other: &NodeSet) -> bool {
        debug_assert_eq!(self.capacity, other.capacity);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &NodeSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place difference `self \ other`.
    pub fn difference_with(&mut self, other: &NodeSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// New set `self \ other`.
    pub fn difference(&self, other: &NodeSet) -> NodeSet {
        let mut s = self.clone();
        s.difference_with(other);
        s
    }

    /// New set `self ∪ other`.
    pub fn union(&self, other: &NodeSet) -> NodeSet {
        let mut s = self.clone();
        s.union_with(other);
        s
    }

    /// Whether the sets intersect.
    pub fn intersects(&self, other: &NodeSet) -> bool {
        debug_assert_eq!(self.capacity, other.capacity);
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Iterates over the elements in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

impl fmt::Debug for NodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for NodeSet {
    /// Collects indices into a set sized to the maximum index + 1. Prefer
    /// [`NodeSet::new`] + inserts when the capacity must match a graph.
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().max().map_or(0, |m| m + 1);
        let mut s = NodeSet::new(cap);
        for i in items {
            s.insert(i);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = NodeSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64));
        assert_eq!(s.len(), 3);
        assert!(s.contains(129));
        assert!(!s.contains(1));
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn subset_and_ops() {
        let mut a = NodeSet::new(100);
        let mut b = NodeSet::new(100);
        for i in [3, 17, 64, 99] {
            b.insert(i);
        }
        a.insert(17);
        a.insert(99);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        let d = b.difference(&a);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![3, 64]);
        let u = a.union(&d);
        assert_eq!(u, b);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&d));
    }

    #[test]
    fn iter_order_and_full() {
        let s = NodeSet::full(70);
        assert_eq!(s.len(), 70);
        let v: Vec<usize> = s.iter().collect();
        assert_eq!(v, (0..70).collect::<Vec<_>>());
    }

    #[test]
    fn empty_set() {
        let s = NodeSet::new(10);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }
}
