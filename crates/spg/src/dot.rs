//! Graphviz (DOT) export of SPGs, for debugging and documentation.

use std::fmt::Write as _;

use crate::graph::Spg;

/// Renders the SPG as a Graphviz `digraph`. Node labels show the stage id,
/// its `(x, y)` label and its weight; edge labels show volumes.
pub fn to_dot(g: &Spg) -> String {
    let mut out = String::new();
    out.push_str("digraph spg {\n  rankdir=LR;\n  node [shape=box];\n");
    for s in g.stages() {
        let l = g.label(s);
        let _ = writeln!(
            out,
            "  n{} [label=\"S{} ({},{})\\nw={:.3e}\"];",
            s.0,
            s.0,
            l.x,
            l.y,
            g.weight(s)
        );
    }
    for e in g.edges() {
        let _ = writeln!(
            out,
            "  n{} -> n{} [label=\"{:.3e}\"];",
            e.src.0, e.dst.0, e.volume
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compose::chain;

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let g = chain(&[1.0, 2.0, 3.0], &[10.0, 20.0]);
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph spg {"));
        assert_eq!(dot.matches(" -> ").count(), 2);
        for s in g.stages() {
            assert!(dot.contains(&format!("n{} [", s.0)));
        }
    }
}
