//! Synthetic StreamIt workload suite (paper Table 1).
//!
//! The paper evaluates on the 12 workflows of the MIT StreamIt benchmark
//! suite. The actual stream graphs are not redistributable here, so this
//! module synthesises, for each workflow, an SPG with **exactly** the
//! published size `n`, elevation `ymax`, depth `xmax` and
//! computation-to-communication ratio CCR of Table 1 (see DESIGN.md §3 for
//! the substitution rationale). The shape is a spine chain of `xmax` stages
//! composed in parallel with `ymax − 1` chains whose lengths absorb the
//! remaining `n − xmax` stages — the same "bounded-elevation pipeline with
//! parallel branches" family the real workflows belong to.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::compose::{chain, parallel};
use crate::graph::Spg;

/// Published characteristics of one StreamIt workflow (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamItSpec {
    /// 1-based index used on the x-axis of Figures 8 and 9.
    pub index: usize,
    /// Workflow name.
    pub name: &'static str,
    /// Number of stages `n`.
    pub n: usize,
    /// Elevation `ymax`.
    pub ymax: u32,
    /// Depth `xmax`.
    pub xmax: u32,
    /// Original computation-to-communication ratio.
    pub ccr: f64,
}

/// Table 1 of the paper, verbatim.
pub const STREAMIT_SPECS: [StreamItSpec; 12] = [
    StreamItSpec {
        index: 1,
        name: "Beamformer",
        n: 57,
        ymax: 12,
        xmax: 12,
        ccr: 537.0,
    },
    StreamItSpec {
        index: 2,
        name: "ChannelVocoder",
        n: 55,
        ymax: 17,
        xmax: 8,
        ccr: 453.0,
    },
    StreamItSpec {
        index: 3,
        name: "Filterbank",
        n: 85,
        ymax: 16,
        xmax: 14,
        ccr: 535.0,
    },
    StreamItSpec {
        index: 4,
        name: "FMRadio",
        n: 43,
        ymax: 12,
        xmax: 12,
        ccr: 330.0,
    },
    StreamItSpec {
        index: 5,
        name: "Vocoder",
        n: 114,
        ymax: 17,
        xmax: 32,
        ccr: 38.0,
    },
    StreamItSpec {
        index: 6,
        name: "BitonicSort",
        n: 40,
        ymax: 4,
        xmax: 23,
        ccr: 6.0,
    },
    StreamItSpec {
        index: 7,
        name: "DCT",
        n: 8,
        ymax: 1,
        xmax: 8,
        ccr: 68.0,
    },
    StreamItSpec {
        index: 8,
        name: "DES",
        n: 53,
        ymax: 3,
        xmax: 45,
        ccr: 7.0,
    },
    StreamItSpec {
        index: 9,
        name: "FFT",
        n: 17,
        ymax: 1,
        xmax: 17,
        ccr: 17.0,
    },
    StreamItSpec {
        index: 10,
        name: "MPEG2-noparser",
        n: 23,
        ymax: 5,
        xmax: 18,
        ccr: 9.0,
    },
    StreamItSpec {
        index: 11,
        name: "Serpent",
        n: 120,
        ymax: 2,
        xmax: 111,
        ccr: 9.0,
    },
    StreamItSpec {
        index: 12,
        name: "TDE",
        n: 29,
        ymax: 1,
        xmax: 29,
        ccr: 12.0,
    },
];

/// Builds the synthetic workflow for one spec: exact `n / ymax / xmax`,
/// seeded random weights in `[1e5, 1e6]` cycles and volumes scaled so the
/// CCR matches the spec exactly.
///
/// # Panics
/// Panics if the spec is structurally unsatisfiable (never the case for
/// [`STREAMIT_SPECS`]).
pub fn streamit_workflow(spec: &StreamItSpec, seed: u64) -> Spg {
    let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(spec.index as u64 * 0x9E37_79B9));
    let mut g = build_shape(spec);
    debug_assert_eq!(g.n(), spec.n, "{}: n mismatch", spec.name);
    debug_assert_eq!(g.elevation(), spec.ymax, "{}: ymax mismatch", spec.name);
    debug_assert_eq!(g.xmax(), spec.xmax, "{}: xmax mismatch", spec.name);
    let weights = (0..g.n()).map(|_| rng.gen_range(1e5..=1e6)).collect();
    let volumes = (0..g.n_edges()).map(|_| rng.gen_range(1e3..=1e5)).collect();
    g.set_weights(weights);
    g.set_volumes(volumes);
    g.scale_to_ccr(spec.ccr);
    g
}

/// The full 12-workflow suite with their specs, at their original CCRs.
pub fn streamit_suite(seed: u64) -> Vec<(StreamItSpec, Spg)> {
    STREAMIT_SPECS
        .iter()
        .map(|spec| (*spec, streamit_workflow(spec, seed)))
        .collect()
}

fn build_shape(spec: &StreamItSpec) -> Spg {
    let spine = unit_chain(spec.xmax as usize);
    if spec.ymax == 1 {
        assert_eq!(
            spec.n, spec.xmax as usize,
            "{}: a pipeline must have n == xmax",
            spec.name
        );
        return spine;
    }
    let branches = spec.ymax as usize - 1;
    let budget = spec
        .n
        .checked_sub(spec.xmax as usize)
        .unwrap_or_else(|| panic!("{}: n < xmax", spec.name));
    assert!(
        budget >= branches,
        "{}: not enough stages for {} branches",
        spec.name,
        branches
    );
    let base = budget / branches;
    let rem = budget % branches;
    let mut g = spine;
    for b in 0..branches {
        let inner = base + usize::from(b < rem);
        // A parallel branch with `inner` inner stages is a chain of
        // `inner + 2` stages sharing the source and sink.
        let len = inner + 2;
        assert!(
            len <= spec.xmax as usize,
            "{}: branch of {} stages would exceed xmax = {}",
            spec.name,
            len,
            spec.xmax
        );
        g = parallel(&g, &unit_chain(len));
    }
    g
}

fn unit_chain(n: usize) -> Spg {
    chain(&vec![1.0; n], &vec![1.0; n - 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_specs_match_table1() {
        for spec in &STREAMIT_SPECS {
            let g = streamit_workflow(spec, 2011);
            assert_eq!(g.n(), spec.n, "{}", spec.name);
            assert_eq!(g.elevation(), spec.ymax, "{}", spec.name);
            assert_eq!(g.xmax(), spec.xmax, "{}", spec.name);
            assert!(
                (g.ccr() - spec.ccr).abs() / spec.ccr < 1e-9,
                "{}: ccr {} vs {}",
                spec.name,
                g.ccr(),
                spec.ccr
            );
            g.check_invariants().unwrap();
        }
    }

    #[test]
    fn pipelines_are_chains() {
        for spec in STREAMIT_SPECS.iter().filter(|s| s.ymax == 1) {
            let g = streamit_workflow(spec, 0);
            assert_eq!(g.n_edges(), g.n() - 1);
            assert_eq!(g.xmax() as usize, g.n());
        }
    }

    #[test]
    fn suite_has_12_workflows() {
        let suite = streamit_suite(1);
        assert_eq!(suite.len(), 12);
        // Indices 1..=12 in order, as plotted in Figures 8-9.
        for (k, (spec, _)) in suite.iter().enumerate() {
            assert_eq!(spec.index, k + 1);
        }
    }

    #[test]
    fn deterministic_per_seed_distinct_across_workflows() {
        let a = streamit_workflow(&STREAMIT_SPECS[0], 5);
        let b = streamit_workflow(&STREAMIT_SPECS[0], 5);
        assert_eq!(a.weights(), b.weights());
        let c = streamit_workflow(&STREAMIT_SPECS[3], 5);
        // FMRadio and Beamformer share ymax/xmax but must differ in weights.
        assert_ne!(a.weights()[..4], c.weights()[..4]);
    }
}
