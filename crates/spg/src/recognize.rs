//! Recognition of two-terminal series-parallel DAGs.
//!
//! The paper's algorithms require the application to *be* a series-parallel
//! graph (§3.1). Graphs built through [`crate::compose`] are SP by
//! construction, but a workflow imported from elsewhere (a DOT file, a
//! trace) needs checking. This module implements the classic
//! Valdes–Tarjan–Lawler reduction: repeatedly
//!
//! * **series-reduce** a non-terminal node with in-degree 1 and out-degree
//!   1 (replace `u → v → w` by `u → w`), and
//! * **parallel-reduce** duplicate edges (merge two `u → w` edges),
//!
//! until no rule applies. The DAG is two-terminal series-parallel **iff**
//! the result is the single edge `source → sink`.
//!
//! Reductions also aggregate costs (series sums volumes through the merged
//! node is *not* meaningful — the node carries computation — so reductions
//! here are purely structural; use them for recognition, not evaluation).

use crate::graph::Spg;

/// Outcome of the reduction process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpRecognition {
    /// Whether the graph reduced to the single source→sink edge.
    pub is_series_parallel: bool,
    /// Number of series reductions applied.
    pub series_steps: usize,
    /// Number of parallel reductions applied.
    pub parallel_steps: usize,
    /// Nodes remaining when reduction stalled (2 for SP graphs).
    pub residual_nodes: usize,
}

/// Runs SP recognition on the graph's structure.
pub fn recognize(g: &Spg) -> SpRecognition {
    recognize_edges(g.n(), g.source().idx(), g.sink().idx(), &edge_list(g))
}

fn edge_list(g: &Spg) -> Vec<(usize, usize)> {
    g.edges()
        .iter()
        .map(|e| (e.src.idx(), e.dst.idx()))
        .collect()
}

/// Core reduction on an explicit multigraph edge list.
pub fn recognize_edges(
    n: usize,
    source: usize,
    sink: usize,
    edges: &[(usize, usize)],
) -> SpRecognition {
    // Adjacency as multisets via counted maps.
    let mut out_deg = vec![0usize; n];
    let mut in_deg = vec![0usize; n];
    // live multigraph edges (with multiplicity)
    let mut mult: std::collections::HashMap<(usize, usize), usize> =
        std::collections::HashMap::new();
    for &(a, b) in edges {
        out_deg[a] += 1;
        in_deg[b] += 1;
        *mult.entry((a, b)).or_insert(0) += 1;
    }
    let mut series_steps = 0usize;
    let mut parallel_steps = 0usize;
    let mut alive = vec![true; n];

    // Initial parallel collapse.
    for (_, m) in mult.iter_mut() {
        if *m > 1 {
            parallel_steps += *m - 1;
        }
    }
    // Keep multiplicity 1 logically; record duplicates as already merged.
    let mut succ: Vec<std::collections::BTreeMap<usize, usize>> = vec![Default::default(); n];
    let mut pred: Vec<std::collections::BTreeMap<usize, usize>> = vec![Default::default(); n];
    for (&(a, b), &m) in &mult {
        succ[a].insert(b, m);
        pred[b].insert(a, m);
    }
    // Recompute degrees as *distinct* neighbour counts after the collapse.
    for v in 0..n {
        out_deg[v] = succ[v].len();
        in_deg[v] = pred[v].len();
    }
    // Work-list of candidate nodes for series reduction.
    let mut queue: Vec<usize> = (0..n)
        .filter(|&v| v != source && v != sink && in_deg[v] == 1 && out_deg[v] == 1)
        .collect();

    while let Some(v) = queue.pop() {
        if !alive[v] || v == source || v == sink || in_deg[v] != 1 || out_deg[v] != 1 {
            continue;
        }
        let (&u, _) = pred[v].iter().next().unwrap();
        let (&w, _) = succ[v].iter().next().unwrap();
        if u == w {
            // A cycle u -> v -> u cannot occur in a DAG; bail out.
            continue;
        }
        // Remove v; add edge u -> w (merging a parallel duplicate if any).
        alive[v] = false;
        series_steps += 1;
        succ[u].remove(&v);
        pred[w].remove(&v);
        pred[v].clear();
        succ[v].clear();
        if let std::collections::btree_map::Entry::Vacant(e) = succ[u].entry(w) {
            e.insert(1);
            pred[w].insert(u, 1);
        } else {
            parallel_steps += 1; // merged with an existing u -> w edge
        }
        out_deg[u] = succ[u].len();
        in_deg[w] = pred[w].len();
        in_deg[v] = 0;
        out_deg[v] = 0;
        // u and w may now be reducible.
        for cand in [u, w] {
            if cand != source && cand != sink && in_deg[cand] == 1 && out_deg[cand] == 1 {
                queue.push(cand);
            }
        }
    }

    let residual_nodes = alive.iter().filter(|&&a| a).count();
    let reduced_to_edge =
        residual_nodes == 2 && succ[source].len() == 1 && succ[source].contains_key(&sink);
    SpRecognition {
        is_series_parallel: reduced_to_edge,
        series_steps,
        parallel_steps,
        residual_nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compose::{chain, parallel, parallel_many, series};
    use crate::generate::{random_spg, SpgGenConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn chains_are_sp() {
        for n in 2..8 {
            let g = chain(&vec![1.0; n], &vec![1.0; n - 1]);
            let r = recognize(&g);
            assert!(r.is_series_parallel, "chain({n})");
            assert_eq!(r.series_steps, n - 2);
        }
    }

    #[test]
    fn composed_graphs_are_sp() {
        let g = series(
            &parallel_many(&[
                chain(&[1.0; 3], &[1.0; 2]),
                chain(&[1.0; 4], &[1.0; 3]),
                chain(&[1.0; 3], &[1.0; 2]),
            ]),
            &parallel(&chain(&[1.0; 3], &[1.0; 2]), &chain(&[1.0; 5], &[1.0; 4])),
        );
        assert!(recognize(&g).is_series_parallel);
    }

    #[test]
    fn random_spgs_recognized() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for e in 1..=8 {
            let cfg = SpgGenConfig {
                n: 30,
                elevation: e,
                ..Default::default()
            };
            let g = random_spg(&cfg, &mut rng);
            assert!(recognize(&g).is_series_parallel, "elevation {e}");
        }
    }

    #[test]
    fn non_sp_dag_rejected() {
        // The "N" graph plus forced single source/sink:
        //   s -> a, s -> b, a -> c, a -> d, b -> d, c -> t, d -> t
        // contains the forbidden N-minor (a->c, a->d, b->d).
        let r = recognize_edges(
            6,
            0,
            5,
            &[(0, 1), (0, 2), (1, 3), (1, 4), (2, 4), (3, 5), (4, 5)],
        );
        assert!(!r.is_series_parallel);
        assert!(r.residual_nodes > 2);
    }

    #[test]
    fn multi_edges_parallel_reduce() {
        // Two parallel edges source -> sink: one parallel step, SP.
        let r = recognize_edges(2, 0, 1, &[(0, 1), (0, 1)]);
        assert!(r.is_series_parallel);
        assert_eq!(r.parallel_steps, 1);
        assert_eq!(r.series_steps, 0);
    }

    #[test]
    fn diamond_counts_reductions() {
        // s -> a -> t, s -> b -> t: two series steps then one parallel.
        let r = recognize_edges(4, 0, 3, &[(0, 1), (1, 3), (0, 2), (2, 3)]);
        assert!(r.is_series_parallel);
        assert_eq!(r.series_steps, 2);
        assert_eq!(r.parallel_steps, 1);
    }
}
