//! # spg — series-parallel workflow graphs
//!
//! Substrate crate for the reproduction of *Benoit, Melhem, Renaud-Goud,
//! Robert — "Energy-aware mappings of series-parallel workflows onto chip
//! multiprocessors"* (INRIA RR-7521 / ICPP 2011).
//!
//! A series-parallel graph (SPG) models a streaming application: nodes are
//! *stages* with a computation requirement `w_i` (CPU cycles per data set),
//! edges carry a communication volume `δ_{i,j}` (bytes per data set). SPGs
//! are built from the two-node base graph by *series* and *parallel*
//! composition (paper §3.1), and every node carries a 2-D label `(x, y)`
//! assigned by the recursive rules of §3.1. The maximum `y` value is the
//! *elevation* `ymax` — the degree of parallelism of the workflow — and the
//! paper's tractability results hinge on it being bounded.
//!
//! Provided here:
//! * [`Spg`] — the graph itself, plus [`compose`] (series/parallel with the
//!   paper's label rules) and structural queries;
//! * [`ideal`] — enumeration of *admissible subgraphs* (order ideals), the
//!   state space of the `DPA1D` dynamic program (paper Theorem 1);
//! * [`generate`] — random SPGs with exact size and elevation (paper
//!   §6.2.2), plus the seeded workload *families*
//!   ([`generate::families`]) the campaign engine sweeps;
//! * [`streamit`] — a synthetic stand-in for the 12 StreamIt workflows with
//!   the exact `n / ymax / xmax / CCR` characteristics of Table 1;
//! * [`dot`] — Graphviz export for debugging and documentation.

pub mod compose;
pub mod dot;
pub mod edit;
pub mod generate;
pub mod graph;
pub mod ideal;
pub mod nodeset;
pub mod recognize;
pub mod streamit;
pub mod wire;

pub use compose::{base, chain, parallel, parallel_many, series, series_many};
pub use edit::Edit;
pub use generate::{
    generate_family, random_spg, FamilyKind, FamilyParams, SpgGenConfig, WorkloadSpec,
};
pub use graph::{EdgeId, Label, Spg, SpgEdge, StageId};
pub use ideal::{enumerate_ideals, IdealError, IdealId, IdealLattice};
pub use nodeset::{NodeSet, NodeSetRef};
pub use recognize::{recognize, recognize_edges, SpRecognition};
pub use streamit::{streamit_suite, streamit_workflow, StreamItSpec, STREAMIT_SPECS};
