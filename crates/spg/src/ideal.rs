//! Admissible subgraphs (order ideals) of an SPG.
//!
//! Paper Theorem 1 defines *admissible subgraphs* recursively: the full graph
//! is admissible, and removing a node with no successor from an admissible
//! subgraph yields an admissible subgraph. These are exactly the **order
//! ideals** (downward-closed sets) of the precedence DAG. In a
//! bounded-elevation SPG, stages sharing a `y` label are totally ordered by
//! precedence, so an ideal is characterised by at most one frontier stage per
//! elevation level — hence at most `n^ymax` ideals, which is the key to the
//! polynomial-time `DPA1D` algorithm.
//!
//! Enumeration is a BFS over the ideal lattice with a hard cap: exceeding the
//! cap aborts with [`IdealError::LimitExceeded`], which `DPA1D` surfaces as a
//! heuristic failure (the paper observes exactly this on the high-elevation
//! StreamIt workflows).

use std::collections::HashMap;

use crate::graph::{Spg, StageId};
use crate::nodeset::NodeSet;

/// Why ideal enumeration failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IdealError {
    /// More ideals than the configured cap — the graph's elevation is too
    /// large for the lattice to be tractable.
    LimitExceeded {
        /// The cap that was exceeded.
        cap: usize,
    },
}

impl std::fmt::Display for IdealError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IdealError::LimitExceeded { cap } => {
                write!(f, "ideal lattice exceeds the cap of {cap} ideals")
            }
        }
    }
}

impl std::error::Error for IdealError {}

/// The enumerated ideal lattice of an SPG.
pub struct IdealLattice {
    /// All ideals, grouped by cardinality in increasing order (BFS layers);
    /// index 0 is the empty ideal, the last entry is the full stage set.
    pub ideals: Vec<NodeSet>,
    index: HashMap<NodeSet, u32>,
}

impl IdealLattice {
    /// Number of ideals (including the empty and full ideals).
    pub fn len(&self) -> usize {
        self.ideals.len()
    }

    /// Whether the lattice is empty (never true for a valid SPG).
    pub fn is_empty(&self) -> bool {
        self.ideals.is_empty()
    }

    /// Looks up the dense index of an ideal.
    pub fn index_of(&self, ideal: &NodeSet) -> Option<u32> {
        self.index.get(ideal).copied()
    }

    /// The dense index of the empty ideal (always 0).
    pub fn empty_index(&self) -> u32 {
        0
    }

    /// The dense index of the full ideal (always the last).
    pub fn full_index(&self) -> u32 {
        (self.ideals.len() - 1) as u32
    }
}

/// Stages that can be appended to `ideal` while keeping it downward-closed:
/// stages outside the ideal whose predecessors are all inside.
pub fn ready_stages(spg: &Spg, ideal: &NodeSet) -> Vec<StageId> {
    spg.stages()
        .filter(|&s| {
            !ideal.contains(s.idx()) && spg.predecessors(s).all(|p| ideal.contains(p.idx()))
        })
        .collect()
}

/// Enumerates every order ideal of `spg`, capped at `cap` ideals.
///
/// The result is grouped by cardinality (all ideals of size `k` precede all
/// ideals of size `k+1`), which is the iteration order the `DPA1D` dynamic
/// program relies on.
pub fn enumerate_ideals(spg: &Spg, cap: usize) -> Result<IdealLattice, IdealError> {
    let n = spg.n();
    let empty = NodeSet::new(n);
    let mut ideals: Vec<NodeSet> = vec![empty.clone()];
    let mut index: HashMap<NodeSet, u32> = HashMap::new();
    index.insert(empty, 0);

    let mut layer_start = 0usize;
    loop {
        let layer_end = ideals.len();
        if layer_start == layer_end {
            break;
        }
        for i in layer_start..layer_end {
            let ready = ready_stages(spg, &ideals[i]);
            for s in ready {
                let mut next = ideals[i].clone();
                next.insert(s.idx());
                if !index.contains_key(&next) {
                    if ideals.len() >= cap {
                        return Err(IdealError::LimitExceeded { cap });
                    }
                    index.insert(next.clone(), ideals.len() as u32);
                    ideals.push(next);
                }
            }
        }
        layer_start = layer_end;
    }
    Ok(IdealLattice { ideals, index })
}

/// Checks that a set is an order ideal (every predecessor of a member is a
/// member). Exposed for tests and for validating DP cluster chains.
pub fn is_ideal(spg: &Spg, set: &NodeSet) -> bool {
    set.iter().all(|i| {
        spg.predecessors(StageId(i as u32))
            .all(|p| set.contains(p.idx()))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compose::{chain, parallel_many, series};

    fn uniform_chain(n: usize) -> Spg {
        chain(&vec![1.0; n], &vec![1.0; n - 1])
    }

    #[test]
    fn chain_has_n_plus_one_ideals() {
        for n in 2..8 {
            let g = uniform_chain(n);
            let lat = enumerate_ideals(&g, 10_000).unwrap();
            assert_eq!(lat.len(), n + 1, "a chain's ideals are its prefixes");
        }
    }

    #[test]
    fn fork_join_ideal_count() {
        // Fork-join with 2 branches of b inner stages each:
        // ideals = 1 (empty) + 1 ({src}) * (b+1)^2 prefix products ... the
        // exact closed form: empty, plus ideals containing the source:
        // (b+1)^2 choices of branch prefixes, plus the full set adds the
        // sink only when both branches are complete (already counted) + 1
        // for sink inclusion. Total = 1 + (b+1)^2 + 1.
        for b in 1..5usize {
            let branch = uniform_chain(b + 2);
            let g = parallel_many(&[branch.clone(), branch.clone()]);
            let lat = enumerate_ideals(&g, 100_000).unwrap();
            assert_eq!(lat.len(), 1 + (b + 1) * (b + 1) + 1);
        }
    }

    #[test]
    fn all_enumerated_sets_are_ideals() {
        let g = series(
            &parallel_many(&[uniform_chain(3), uniform_chain(4)]),
            &uniform_chain(3),
        );
        let lat = enumerate_ideals(&g, 100_000).unwrap();
        for ideal in &lat.ideals {
            assert!(is_ideal(&g, ideal));
        }
        // First is empty, last is full.
        assert!(lat.ideals[0].is_empty());
        assert_eq!(lat.ideals[lat.full_index() as usize].len(), g.n());
        // Sorted by cardinality.
        let sizes: Vec<usize> = lat.ideals.iter().map(|s| s.len()).collect();
        assert!(sizes.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn cap_is_enforced() {
        // Elevation-8 fork-join has far more than 50 ideals.
        let branches: Vec<Spg> = (0..8).map(|_| uniform_chain(5)).collect();
        let g = parallel_many(&branches);
        match enumerate_ideals(&g, 50) {
            Err(IdealError::LimitExceeded { cap: 50 }) => {}
            other => panic!("expected LimitExceeded, got {:?}", other.map(|l| l.len())),
        }
    }

    #[test]
    fn ready_stages_of_empty_is_source() {
        let g = uniform_chain(5);
        let ready = ready_stages(&g, &NodeSet::new(g.n()));
        assert_eq!(ready, vec![g.source()]);
    }

    #[test]
    fn index_roundtrip() {
        let g = uniform_chain(4);
        let lat = enumerate_ideals(&g, 1000).unwrap();
        for (i, ideal) in lat.ideals.iter().enumerate() {
            assert_eq!(lat.index_of(ideal), Some(i as u32));
        }
        let mut not_ideal = NodeSet::new(g.n());
        not_ideal.insert(g.sink().idx());
        assert_eq!(lat.index_of(&not_ideal), None);
    }
}
