//! Admissible subgraphs (order ideals) of an SPG.
//!
//! Paper Theorem 1 defines *admissible subgraphs* recursively: the full graph
//! is admissible, and removing a node with no successor from an admissible
//! subgraph yields an admissible subgraph. These are exactly the **order
//! ideals** (downward-closed sets) of the precedence DAG. In a
//! bounded-elevation SPG, stages sharing a `y` label are totally ordered by
//! precedence, so an ideal is characterised by at most one frontier stage per
//! elevation level — hence at most `n^ymax` ideals, which is the key to the
//! polynomial-time `DPA1D` algorithm.
//!
//! Ideals are **interned**: the lattice stores every ideal's words in one
//! flat arena and hands out dense [`IdealId`]s through an FxHash-style
//! open-addressing table. DP clients (`DPA1D` and friends) key their state
//! by `IdealId` and read ideals back as borrowed [`NodeSetRef`]s —
//! enumeration and lookup never clone a [`NodeSet`], and the membership
//! probe is a couple of multiplies instead of SipHash over a heap vector.
//!
//! Enumeration is a BFS over the ideal lattice with a hard cap: exceeding the
//! cap aborts with [`IdealError::LimitExceeded`], which `DPA1D` surfaces as a
//! heuristic failure (the paper observes exactly this on the high-elevation
//! StreamIt workflows).

use crate::graph::{Spg, StageId};
use crate::nodeset::{NodeSet, NodeSetRef};
use crate::wire;

/// Why ideal enumeration failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IdealError {
    /// More ideals than the configured cap — the graph's elevation is too
    /// large for the lattice to be tractable.
    LimitExceeded {
        /// The cap that was exceeded.
        cap: usize,
        /// Ideal count observed at abort (a lower bound on the true lattice
        /// size when enumeration stopped early; the exact size when a
        /// completed enumeration merely exceeds a smaller requested cap).
        found: usize,
    },
}

impl std::fmt::Display for IdealError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IdealError::LimitExceeded { cap, .. } => {
                write!(f, "ideal lattice exceeds the cap of {cap} ideals")
            }
        }
    }
}

impl std::error::Error for IdealError {}

/// Dense index of one interned ideal inside its [`IdealLattice`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IdealId(pub u32);

impl IdealId {
    /// The id as a `usize`, for direct vector indexing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Multiplicative word mixer (FxHash's constant). Ideal bitsets are far
/// from random — downsets of the same SPG often share long runs of equal
/// low bits — so bucket indices must come from the **high** bits of the
/// product (Fibonacci hashing); see [`bucket_of`].
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

#[inline]
fn fx_hash_words(words: &[u64]) -> u64 {
    let mut h: u64 = 0;
    for &w in words {
        h = (h.rotate_left(5) ^ w).wrapping_mul(FX_SEED);
    }
    h
}

/// Maps a hash to a slot of a power-of-two table using its high bits (the
/// low bits of a multiplicative hash only depend on the low input bits,
/// which collide catastrophically on chain-prefix bitsets).
#[inline]
fn bucket_of(h: u64, table_len: usize) -> usize {
    debug_assert!(table_len.is_power_of_two());
    (h >> (64 - table_len.trailing_zeros())) as usize
}

/// The enumerated ideal lattice of an SPG: an interning arena over all
/// ideals, grouped by cardinality in increasing order (BFS layers). Id 0 is
/// the empty ideal, the last id is the full stage set.
///
/// `Clone` exists for incremental workload edits (`Instance::with_edit`):
/// the lattice's *structure* only depends on the SP graph's shape, so a
/// weight/volume edit clones it and recomputes the derived cut volumes.
#[derive(Clone)]
pub struct IdealLattice {
    /// Flat word arena; ideal `i` occupies `words[i*wps .. (i+1)*wps]`.
    arena: Vec<u64>,
    /// Words per set (`ceil(capacity / 64)`).
    wps: usize,
    /// Stage count `n` of the SPG (every ideal's bit capacity).
    capacity: usize,
    /// Open-addressing table of `id + 1` entries (0 = empty bucket);
    /// `buckets.len()` is a power of two.
    buckets: Vec<u32>,
    /// Hasse diagram recorded during enumeration: `hasse[hasse_off[i] ..
    /// hasse_off[i+1]]` lists `(stage, child_id)` covers of ideal `i` —
    /// adding `stage` to ideal `i` yields ideal `child_id`. DP clients walk
    /// these instead of re-hashing candidate sets.
    hasse: Vec<(u32, u32)>,
    hasse_off: Vec<u32>,
    /// Per-stage predecessor masks of the enumerated graph, kept so DP
    /// clients do not have to recompute them ([`Spg::predecessor_masks`]).
    pred_masks: Vec<NodeSet>,
}

impl IdealLattice {
    fn with_capacity(capacity: usize, pred_masks: Vec<NodeSet>) -> Self {
        IdealLattice {
            arena: Vec::new(),
            wps: capacity.div_ceil(64).max(1),
            capacity,
            buckets: vec![0; 64],
            hasse: Vec::new(),
            hasse_off: vec![0],
            pred_masks,
        }
    }

    /// The enumerated graph's per-stage predecessor masks.
    #[inline]
    pub fn pred_masks(&self) -> &[NodeSet] {
        &self.pred_masks
    }

    /// Number of ideals (including the empty and full ideals).
    #[inline]
    pub fn len(&self) -> usize {
        self.arena.len() / self.wps
    }

    /// Approximate resident size in bytes: the word arena, the hash
    /// buckets, the Hasse diagram, and the predecessor masks. Used for
    /// byte-bounded artifact-cache accounting, so it only needs to track
    /// the dominant allocations, not every last pointer.
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.arena.capacity() * std::mem::size_of::<u64>()
            + self.buckets.capacity() * std::mem::size_of::<u32>()
            + self.hasse.capacity() * std::mem::size_of::<(u32, u32)>()
            + self.hasse_off.capacity() * std::mem::size_of::<u32>()
            + self
                .pred_masks
                .iter()
                .map(NodeSet::size_bytes)
                .sum::<usize>()
    }

    /// Whether the lattice is empty (never true for a valid SPG).
    pub fn is_empty(&self) -> bool {
        self.arena.is_empty()
    }

    /// The ideal behind an id, as a borrowed set.
    #[inline]
    pub fn get(&self, id: IdealId) -> NodeSetRef<'_> {
        let start = id.idx() * self.wps;
        NodeSetRef::from_words(&self.arena[start..start + self.wps], self.capacity)
    }

    /// Looks up the dense id of an ideal, if it is in the lattice.
    pub fn id_of(&self, set: NodeSetRef<'_>) -> Option<IdealId> {
        debug_assert_eq!(set.capacity(), self.capacity);
        let mask = self.buckets.len() - 1;
        let mut slot = bucket_of(fx_hash_words(set.words()), self.buckets.len());
        loop {
            match self.buckets[slot] {
                0 => return None,
                tag => {
                    let id = IdealId(tag - 1);
                    if self.get(id).words() == set.words() {
                        return Some(id);
                    }
                }
            }
            slot = (slot + 1) & mask;
        }
    }

    /// All ids in BFS (cardinality) order.
    pub fn ids(&self) -> impl ExactSizeIterator<Item = IdealId> {
        (0..self.len() as u32).map(IdealId)
    }

    /// All ideals in BFS (cardinality) order, as borrowed sets.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = NodeSetRef<'_>> {
        self.arena
            .chunks_exact(self.wps)
            .map(|w| NodeSetRef::from_words(w, self.capacity))
    }

    /// The `(stage, child_id)` covers of `id`: adding `stage` to this ideal
    /// yields the ideal `child_id`. Populated for every ideal by
    /// [`enumerate_ideals`], in ready-stage order.
    #[inline]
    pub fn covers(&self, id: IdealId) -> &[(u32, u32)] {
        &self.hasse[self.hasse_off[id.idx()] as usize..self.hasse_off[id.idx() + 1] as usize]
    }

    /// The ideal reached from `id` by adding `stage`, if `stage` is ready
    /// there (a scan over the handful of covers of `id`).
    #[inline]
    pub fn child_via(&self, id: IdealId, stage: StageId) -> Option<IdealId> {
        self.covers(id)
            .iter()
            .find(|&&(s, _)| s == stage.0)
            .map(|&(_, c)| IdealId(c))
    }

    /// The dense id of the empty ideal (always 0).
    pub fn empty_id(&self) -> IdealId {
        IdealId(0)
    }

    /// The dense id of the full ideal (always the last).
    pub fn full_id(&self) -> IdealId {
        IdealId((self.len() - 1) as u32)
    }

    /// Interns `set`: returns its id and whether it was newly inserted.
    fn intern(&mut self, set: NodeSetRef<'_>) -> (IdealId, bool) {
        debug_assert_eq!(set.capacity(), self.capacity);
        if (self.len() + 1) * 4 > self.buckets.len() * 3 {
            self.grow();
        }
        let mask = self.buckets.len() - 1;
        let mut slot = bucket_of(fx_hash_words(set.words()), self.buckets.len());
        loop {
            match self.buckets[slot] {
                0 => {
                    let id = IdealId(self.len() as u32);
                    self.arena.extend_from_slice(set.words());
                    self.buckets[slot] = id.0 + 1;
                    return (id, true);
                }
                tag => {
                    let id = IdealId(tag - 1);
                    if self.get(id).words() == set.words() {
                        return (id, false);
                    }
                }
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Serialises the lattice into a self-contained little-endian byte
    /// image for artifact-cache spill files. Every field — including the
    /// open-addressing table — is stored verbatim, so
    /// [`IdealLattice::from_bytes`] reconstructs a structurally identical
    /// lattice (same ids, same Hasse order, same bucket layout) without
    /// re-running enumeration.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.arena.len() * 8);
        wire::put_u64_slice(&mut out, &self.arena);
        wire::put_u64(&mut out, self.wps as u64);
        wire::put_u64(&mut out, self.capacity as u64);
        wire::put_u32_slice(&mut out, &self.buckets);
        wire::put_u64(&mut out, self.hasse.len() as u64);
        for &(s, c) in &self.hasse {
            wire::put_u32(&mut out, s);
            wire::put_u32(&mut out, c);
        }
        wire::put_u32_slice(&mut out, &self.hasse_off);
        wire::put_u64(&mut out, self.pred_masks.len() as u64);
        for m in &self.pred_masks {
            wire::put_u64(&mut out, m.capacity() as u64);
            wire::put_u64_slice(&mut out, m.words());
        }
        out
    }

    /// Decodes a byte image produced by [`IdealLattice::to_bytes`].
    ///
    /// Decoding is defensive — every length is bounds-checked against the
    /// remaining input and the cross-field invariants (arena a multiple of
    /// the word stride, power-of-two bucket table, monotone Hasse offsets)
    /// are re-validated — so a truncated or corrupted spill file yields an
    /// `Err`, never a panic or an inconsistent lattice.
    pub fn from_bytes(bytes: &[u8]) -> Result<IdealLattice, String> {
        let mut pos = 0usize;
        let arena = wire::get_u64_slice(bytes, &mut pos)?;
        let wps = wire::get_u64(bytes, &mut pos)? as usize;
        let capacity = wire::get_u64(bytes, &mut pos)? as usize;
        let buckets = wire::get_u32_slice(bytes, &mut pos)?;
        let n_hasse = wire::get_len(bytes, &mut pos, 8)?;
        let mut hasse = Vec::with_capacity(n_hasse);
        for _ in 0..n_hasse {
            let s = wire::get_u32(bytes, &mut pos)?;
            let c = wire::get_u32(bytes, &mut pos)?;
            hasse.push((s, c));
        }
        let hasse_off = wire::get_u32_slice(bytes, &mut pos)?;
        let n_masks = wire::get_len(bytes, &mut pos, 9)?;
        let mut pred_masks = Vec::with_capacity(n_masks);
        for _ in 0..n_masks {
            let cap = wire::get_u64(bytes, &mut pos)? as usize;
            let words = wire::get_u64_slice(bytes, &mut pos)?;
            if cap.div_ceil(64).max(1) != words.len() {
                return Err("predecessor mask word count disagrees with capacity".into());
            }
            pred_masks.push(NodeSet::from_words(&words, cap));
        }
        if pos != bytes.len() {
            return Err(format!(
                "{} trailing bytes after lattice image",
                bytes.len() - pos
            ));
        }
        if wps == 0 || wps != capacity.div_ceil(64).max(1) {
            return Err("word stride disagrees with capacity".into());
        }
        if arena.len() % wps != 0 {
            return Err("arena length is not a multiple of the word stride".into());
        }
        let len = arena.len() / wps;
        if !buckets.len().is_power_of_two() || buckets.len() * 3 < (len + 1) * 4 {
            return Err("bucket table is not a valid open-addressing table".into());
        }
        if buckets.iter().any(|&b| b as usize > len) {
            return Err("bucket entry exceeds ideal count".into());
        }
        if hasse_off.len() != len + 1
            || hasse_off.windows(2).any(|w| w[0] > w[1])
            || hasse_off.last().copied().unwrap_or(0) as usize != hasse.len()
        {
            return Err("Hasse offsets are not a monotone cover of the Hasse list".into());
        }
        if hasse
            .iter()
            .any(|&(s, c)| s as usize >= capacity.max(1) || c as usize >= len)
        {
            return Err("Hasse entry references an out-of-range stage or ideal".into());
        }
        if pred_masks.len() != capacity {
            return Err("predecessor mask count disagrees with stage count".into());
        }
        Ok(IdealLattice {
            arena,
            wps,
            capacity,
            buckets,
            hasse,
            hasse_off,
            pred_masks,
        })
    }

    /// Doubles the table and re-seats every id (arena is untouched).
    fn grow(&mut self) {
        let new_len = self.buckets.len() * 2;
        let mask = new_len - 1;
        let mut fresh = vec![0u32; new_len];
        for id in 0..self.len() as u32 {
            let start = id as usize * self.wps;
            let words = &self.arena[start..start + self.wps];
            let mut slot = bucket_of(fx_hash_words(words), new_len);
            while fresh[slot] != 0 {
                slot = (slot + 1) & mask;
            }
            fresh[slot] = id + 1;
        }
        self.buckets = fresh;
    }
}

/// Stages that can be appended to `ideal` while keeping it downward-closed:
/// stages outside the ideal whose predecessors are all inside.
pub fn ready_stages(spg: &Spg, ideal: NodeSetRef<'_>) -> Vec<StageId> {
    spg.stages()
        .filter(|&s| {
            !ideal.contains(s.idx()) && spg.predecessors(s).all(|p| ideal.contains(p.idx()))
        })
        .collect()
}

/// Enumerates every order ideal of `spg`, capped at `cap` ideals.
///
/// The result is grouped by cardinality (all ideals of size `k` precede all
/// ideals of size `k+1`), which is the iteration order the `DPA1D` dynamic
/// program relies on.
///
/// Ready lists are maintained **incrementally**: when a new ideal is first
/// interned from parent `P` by adding stage `s`, its ready list is `P`'s
/// minus `s` plus the successors of `s` released by the addition (a stage
/// becomes ready exactly when its last missing predecessor arrives). The
/// lists are recorded as the lattice's Hasse stage entries (child ids are
/// filled in when the ideal is processed), so the whole BFS costs
/// `O(Σ covers)` instead of `O(#ideals · n)` mask scans, and works on one
/// scratch set — the only allocations are the arena pushes for genuinely
/// new ideals.
pub fn enumerate_ideals(spg: &Spg, cap: usize) -> Result<IdealLattice, IdealError> {
    let n = spg.n();
    let mut lat = IdealLattice::with_capacity(n, spg.predecessor_masks());
    let mut scratch = NodeSet::new(n);
    lat.intern(scratch.as_set());
    // The empty ideal's ready list: the unique source.
    lat.hasse.push((spg.source().0, PENDING));
    lat.hasse_off.push(lat.hasse.len() as u32);

    let mut i = 0usize;
    while i < lat.len() {
        let id = IdealId(i as u32);
        scratch.clone_from_ref(lat.get(id));
        let (start, end) = (lat.hasse_off[i] as usize, lat.hasse_off[i + 1] as usize);
        for k in start..end {
            let s = StageId(lat.hasse[k].0);
            scratch.insert(s.idx());
            let (child, inserted) = lat.intern(scratch.as_set());
            lat.hasse[k].1 = child.0;
            if inserted {
                if lat.len() > cap {
                    return Err(IdealError::LimitExceeded {
                        cap,
                        found: lat.len(),
                    });
                }
                // Record the child's ready list: this level's stages minus
                // `s`, plus the successors of `s` whose predecessors are now
                // all present.
                for k2 in start..end {
                    let other = lat.hasse[k2].0;
                    if other != s.0 {
                        lat.hasse.push((other, PENDING));
                    }
                }
                let released_start = lat.hasse.len();
                for (_, e) in spg.out_edges(s) {
                    let d = e.dst;
                    if lat.pred_masks[d.idx()].as_set().is_subset(scratch.as_set())
                        // Parallel edges `s → d` must release `d` only once.
                        && !lat.hasse[released_start..].iter().any(|&(x, _)| x == d.0)
                    {
                        lat.hasse.push((d.0, PENDING));
                    }
                }
                lat.hasse_off.push(lat.hasse.len() as u32);
            }
            scratch.remove(s.idx());
        }
        i += 1;
    }
    Ok(lat)
}

/// Placeholder child id in freshly recorded Hasse entries, overwritten when
/// the owning ideal is processed (every ideal is processed before any
/// client sees the lattice).
const PENDING: u32 = u32::MAX;

/// Checks that a set is an order ideal (every predecessor of a member is a
/// member). Exposed for tests and for validating DP cluster chains.
pub fn is_ideal(spg: &Spg, set: NodeSetRef<'_>) -> bool {
    set.iter().all(|i| {
        spg.predecessors(StageId(i as u32))
            .all(|p| set.contains(p.idx()))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compose::{chain, parallel_many, series};

    fn uniform_chain(n: usize) -> Spg {
        chain(&vec![1.0; n], &vec![1.0; n - 1])
    }

    #[test]
    fn chain_has_n_plus_one_ideals() {
        for n in 2..8 {
            let g = uniform_chain(n);
            let lat = enumerate_ideals(&g, 10_000).unwrap();
            assert_eq!(lat.len(), n + 1, "a chain's ideals are its prefixes");
        }
    }

    #[test]
    fn fork_join_ideal_count() {
        // Fork-join with 2 branches of b inner stages each:
        // ideals = 1 (empty) + 1 ({src}) * (b+1)^2 prefix products ... the
        // exact closed form: empty, plus ideals containing the source:
        // (b+1)^2 choices of branch prefixes, plus the full set adds the
        // sink only when both branches are complete (already counted) + 1
        // for sink inclusion. Total = 1 + (b+1)^2 + 1.
        for b in 1..5usize {
            let branch = uniform_chain(b + 2);
            let g = parallel_many(&[branch.clone(), branch.clone()]);
            let lat = enumerate_ideals(&g, 100_000).unwrap();
            assert_eq!(lat.len(), 1 + (b + 1) * (b + 1) + 1);
        }
    }

    #[test]
    fn all_enumerated_sets_are_ideals() {
        let g = series(
            &parallel_many(&[uniform_chain(3), uniform_chain(4)]),
            &uniform_chain(3),
        );
        let lat = enumerate_ideals(&g, 100_000).unwrap();
        for ideal in lat.iter() {
            assert!(is_ideal(&g, ideal));
        }
        // First is empty, last is full.
        assert!(lat.get(lat.empty_id()).is_empty());
        assert_eq!(lat.get(lat.full_id()).len(), g.n());
        // Sorted by cardinality.
        let sizes: Vec<usize> = lat.iter().map(|s| s.len()).collect();
        assert!(sizes.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn cap_is_enforced() {
        // Elevation-8 fork-join has far more than 50 ideals.
        let branches: Vec<Spg> = (0..8).map(|_| uniform_chain(5)).collect();
        let g = parallel_many(&branches);
        match enumerate_ideals(&g, 50) {
            Err(IdealError::LimitExceeded { cap: 50, found }) if found > 50 => {}
            other => panic!("expected LimitExceeded, got {:?}", other.map(|l| l.len())),
        }
    }

    #[test]
    fn ready_stages_of_empty_is_source() {
        let g = uniform_chain(5);
        let empty = NodeSet::new(g.n());
        let ready = ready_stages(&g, empty.as_set());
        assert_eq!(ready, vec![g.source()]);
    }

    #[test]
    fn id_roundtrip() {
        let g = uniform_chain(4);
        let lat = enumerate_ideals(&g, 1000).unwrap();
        for id in lat.ids() {
            assert_eq!(lat.id_of(lat.get(id)), Some(id));
        }
        let mut not_ideal = NodeSet::new(g.n());
        not_ideal.insert(g.sink().idx());
        assert_eq!(lat.id_of(not_ideal.as_set()), None);
    }

    #[test]
    fn byte_image_round_trips_exactly() {
        let g = series(
            &parallel_many(&[uniform_chain(3), uniform_chain(4)]),
            &uniform_chain(3),
        );
        let lat = enumerate_ideals(&g, 100_000).unwrap();
        let bytes = lat.to_bytes();
        let back = IdealLattice::from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), lat.len());
        assert_eq!(back.capacity, lat.capacity);
        for id in lat.ids() {
            assert_eq!(back.get(id).words(), lat.get(id).words());
            assert_eq!(back.covers(id), lat.covers(id));
            // The interning table must survive too: lookups by value work.
            assert_eq!(back.id_of(lat.get(id)), Some(id));
        }
        assert_eq!(back.pred_masks.len(), lat.pred_masks.len());
        // Re-encoding is bit-stable.
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn corrupt_byte_images_are_rejected() {
        let g = uniform_chain(5);
        let lat = enumerate_ideals(&g, 1000).unwrap();
        let bytes = lat.to_bytes();
        // Truncation at every boundary errors instead of panicking.
        for cut in [0, 1, 8, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                IdealLattice::from_bytes(&bytes[..cut]).is_err(),
                "cut {cut}"
            );
        }
        // Trailing garbage is rejected.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(IdealLattice::from_bytes(&padded).is_err());
        // An absurd arena length prefix is rejected before allocating.
        let mut huge = bytes.clone();
        huge[..8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(IdealLattice::from_bytes(&huge).is_err());
    }

    #[test]
    fn interning_survives_table_growth() {
        // A lattice big enough to force several grow() cycles (initial
        // table is 64 buckets): elevation-4 fork-join with 4 inner stages
        // per branch has (4+1)^4 + 2 = 627 ideals.
        let branches: Vec<Spg> = (0..4).map(|_| uniform_chain(6)).collect();
        let g = parallel_many(&branches);
        let lat = enumerate_ideals(&g, 100_000).unwrap();
        assert_eq!(lat.len(), 5usize.pow(4) + 2);
        for id in lat.ids() {
            assert_eq!(lat.id_of(lat.get(id)), Some(id));
        }
    }
}
