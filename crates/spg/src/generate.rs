//! Random SPG generation (paper §6.2.2).
//!
//! The paper's random campaign sweeps SPGs by *size* `n` (50 or 150 stages)
//! and *elevation* (the x-axis of Figures 10–13), so the generator here takes
//! both as exact targets. Structure is built by recursive series/parallel
//! composition: elevation splits across parallel branches (elevation is
//! additive under parallel composition), series-chain segments are
//! interleaved with configurable probability to diversify `xmax`.
//!
//! Weights and communication volumes are drawn uniformly from configurable
//! ranges and can be rescaled to an exact CCR, matching §6.1.1.

use rand::Rng;

use crate::compose::{chain, parallel, series};
use crate::graph::Spg;

pub mod families;

pub use families::{generate_family, FamilyKind, FamilyParams, WorkloadSpec};

/// Configuration for [`random_spg`].
#[derive(Debug, Clone)]
pub struct SpgGenConfig {
    /// Exact number of stages.
    pub n: usize,
    /// Exact elevation `ymax`.
    pub elevation: u32,
    /// Uniform range for stage weights `w_i` (cycles per data set).
    pub weight_range: (f64, f64),
    /// Uniform range for raw edge volumes `δ` (bytes per data set), before
    /// CCR scaling.
    pub volume_range: (f64, f64),
    /// If set, rescale all volumes so `Σw / Σδ` equals this CCR exactly.
    pub ccr: Option<f64>,
    /// Probability of peeling a series chain segment at each recursion step
    /// (shape diversity; 0 gives pure stacked-parallel graphs).
    pub series_prob: f64,
}

impl Default for SpgGenConfig {
    fn default() -> Self {
        SpgGenConfig {
            n: 50,
            elevation: 5,
            weight_range: (1e5, 1e6),
            volume_range: (1e3, 1e5),
            ccr: None,
            series_prob: 0.3,
        }
    }
}

/// Minimum stage count of an SPG with the given elevation: a chain for
/// elevation 1, otherwise `e` parallel one-inner-stage branches plus the
/// shared source and sink.
pub fn min_stages_for_elevation(e: u32) -> usize {
    if e <= 1 {
        2
    } else {
        e as usize + 2
    }
}

/// Generates a random SPG with exactly `cfg.n` stages and elevation
/// `cfg.elevation`, weighted from `rng` and optionally rescaled to
/// `cfg.ccr`.
///
/// # Panics
/// Panics if `cfg.n < min_stages_for_elevation(cfg.elevation)` or the ranges
/// are malformed.
pub fn random_spg<R: Rng + ?Sized>(cfg: &SpgGenConfig, rng: &mut R) -> Spg {
    assert!(cfg.elevation >= 1, "elevation must be at least 1");
    assert!(
        cfg.n >= min_stages_for_elevation(cfg.elevation),
        "n = {} is too small for elevation {} (needs at least {})",
        cfg.n,
        cfg.elevation,
        min_stages_for_elevation(cfg.elevation)
    );
    let mut g = build_shape(cfg.n, cfg.elevation, cfg.series_prob, rng);
    debug_assert_eq!(g.n(), cfg.n);
    debug_assert_eq!(g.elevation(), cfg.elevation);

    let (wlo, whi) = cfg.weight_range;
    assert!(wlo > 0.0 && whi >= wlo, "bad weight range");
    let (vlo, vhi) = cfg.volume_range;
    assert!(vlo > 0.0 && vhi >= vlo, "bad volume range");
    let weights = (0..g.n()).map(|_| rng.gen_range(wlo..=whi)).collect();
    let volumes = (0..g.n_edges()).map(|_| rng.gen_range(vlo..=vhi)).collect();
    g.set_weights(weights);
    g.set_volumes(volumes);
    if let Some(ccr) = cfg.ccr {
        g.scale_to_ccr(ccr);
    }
    g
}

/// Recursive shape builder: exactly `n` stages, exactly elevation `e`.
/// All weights/volumes are placeholder `1.0` — the caller overwrites them.
fn build_shape<R: Rng + ?Sized>(n: usize, e: u32, series_prob: f64, rng: &mut R) -> Spg {
    debug_assert!(n >= min_stages_for_elevation(e));
    if e == 1 {
        return unit_chain(n);
    }
    let slack = n - min_stages_for_elevation(e);
    // Occasionally peel a series chain of k extra stages off the front or
    // back; series composition shares one stage, so chain(k+1) + rest(n-k)
    // re-assembles to exactly n stages.
    if slack > 0 && rng.gen_bool(series_prob) {
        let k = rng.gen_range(1..=slack);
        let rest = build_shape(n - k, e, series_prob, rng);
        let seg = unit_chain(k + 1);
        return if rng.gen_bool(0.5) {
            series(&seg, &rest)
        } else {
            series(&rest, &seg)
        };
    }
    // Parallel split: elevation is additive, sources/sinks are shared
    // (n = n1 + n2 - 2). A branch needs at least one *inner* stage to
    // contribute its elevation (a bare two-stage branch is just a shortcut
    // edge and adds no elevation), so the per-branch minimum is e_i + 2
    // even when e_i = 1.
    let e1 = rng.gen_range(1..e);
    let e2 = e - e1;
    let min1 = e1 as usize + 2;
    let min2 = e2 as usize + 2;
    let budget = n + 2 - min1 - min2;
    let extra1 = rng.gen_range(0..=budget);
    let n1 = min1 + extra1;
    let n2 = min2 + (budget - extra1);
    debug_assert_eq!(n1 + n2 - 2, n);
    let a = build_shape(n1, e1, series_prob, rng);
    let b = build_shape(n2, e2, series_prob, rng);
    parallel(&a, &b)
}

fn unit_chain(n: usize) -> Spg {
    chain(&vec![1.0; n], &vec![1.0; n - 1])
}

/// Generates a random SPG of exactly `n` stages with *unconstrained*
/// elevation (uniformly random split decisions); useful for property tests
/// that should not be biased toward a particular shape.
pub fn random_spg_free<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Spg {
    assert!(n >= 2);
    let max_e = n.saturating_sub(2).clamp(1, 12) as u32;
    let e = rng.gen_range(1..=max_e.max(1));
    let e = e.min(((n.saturating_sub(2)) as u32).max(1));
    let cfg = SpgGenConfig {
        n,
        elevation: if n >= min_stages_for_elevation(e) {
            e
        } else {
            1
        },
        ..SpgGenConfig::default()
    };
    random_spg(&cfg, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn exact_size_and_elevation() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        for e in 1..=12u32 {
            for n in [30usize, 50, 150] {
                let cfg = SpgGenConfig {
                    n,
                    elevation: e,
                    ..Default::default()
                };
                let g = random_spg(&cfg, &mut rng);
                assert_eq!(g.n(), n, "n mismatch at e={e}");
                assert_eq!(g.elevation(), e, "elevation mismatch at n={n}");
                g.check_invariants().unwrap();
            }
        }
    }

    #[test]
    fn ccr_is_exact() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for target in [10.0, 1.0, 0.1] {
            let cfg = SpgGenConfig {
                n: 50,
                elevation: 6,
                ccr: Some(target),
                ..Default::default()
            };
            let g = random_spg(&cfg, &mut rng);
            assert!((g.ccr() - target).abs() / target < 1e-9);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = SpgGenConfig {
            n: 40,
            elevation: 4,
            ..Default::default()
        };
        let g1 = random_spg(&cfg, &mut ChaCha8Rng::seed_from_u64(123));
        let g2 = random_spg(&cfg, &mut ChaCha8Rng::seed_from_u64(123));
        assert_eq!(g1.n(), g2.n());
        assert_eq!(g1.labels(), g2.labels());
        assert_eq!(g1.weights(), g2.weights());
    }

    #[test]
    fn minimum_size_graphs() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        for e in 2..=8u32 {
            let n = min_stages_for_elevation(e);
            let cfg = SpgGenConfig {
                n,
                elevation: e,
                ..Default::default()
            };
            let g = random_spg(&cfg, &mut rng);
            assert_eq!(g.n(), n);
            assert_eq!(g.elevation(), e);
        }
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn rejects_impossible_target() {
        let cfg = SpgGenConfig {
            n: 5,
            elevation: 5,
            ..Default::default()
        };
        let _ = random_spg(&cfg, &mut ChaCha8Rng::seed_from_u64(0));
    }

    #[test]
    fn free_generator_valid() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for n in [2usize, 3, 10, 60] {
            let g = random_spg_free(n, &mut rng);
            assert_eq!(g.n(), n);
            g.check_invariants().unwrap();
        }
    }
}
