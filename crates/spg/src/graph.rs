//! Core SPG data structure.
//!
//! Stages are indexed by [`StageId`] (dense `u32` indices). The graph stores
//! per-stage computation requirements `w_i`, per-stage labels `(x_i, y_i)`
//! (paper §3.1), and a flat edge list with per-edge communication volumes
//! `δ_{i,j}`. Parallel (duplicate) edges are permitted — they arise from the
//! parallel composition of two base SPGs — and every algorithm in the
//! workspace treats the edge *list* as authoritative.

/// Dense stage index inside one [`Spg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StageId(pub u32);

impl StageId {
    /// The stage index as a `usize`, for direct vector indexing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Dense edge index inside one [`Spg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// The edge index as a `usize`, for direct vector indexing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// The 2-D label `(x, y)` of a stage (paper §3.1).
///
/// `x` is the position along the critical path direction (the source has
/// `x = 1`, the sink has the maximal `x`), `y` is the elevation of the branch
/// the stage lives on. Labels define the virtual grid used by the `DPA2D`
/// heuristic and the *elevation* `ymax = max_i y_i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label {
    /// Position along the series direction, `1..=xmax`.
    pub x: u32,
    /// Elevation of the branch, `1..=ymax`.
    pub y: u32,
}

/// A directed application edge `L_{i,j}` with communication volume
/// `δ_{i,j}` in bytes per data set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpgEdge {
    /// Source stage.
    pub src: StageId,
    /// Destination stage.
    pub dst: StageId,
    /// Communication volume in bytes per data set.
    pub volume: f64,
}

/// A series-parallel workflow graph.
///
/// Invariants (checked by [`Spg::check_invariants`], established by the
/// constructors in [`crate::compose`]):
/// * exactly one source (no predecessors) and one sink (no successors);
/// * the graph is acyclic and every edge satisfies `x_dst > x_src`;
/// * the source is stage `0` with label `(1, 1)`; the sink has label
///   `(xmax, 1)`;
/// * labels are unique across stages.
#[derive(Debug, Clone)]
pub struct Spg {
    weights: Vec<f64>,
    labels: Vec<Label>,
    edges: Vec<SpgEdge>,
    /// Outgoing edge ids per stage.
    succ: Vec<Vec<EdgeId>>,
    /// Incoming edge ids per stage.
    pred: Vec<Vec<EdgeId>>,
    source: StageId,
    sink: StageId,
}

impl Spg {
    /// Builds an SPG from raw parts. Used by the composition functions;
    /// prefer [`crate::compose`] for public construction.
    ///
    /// # Panics
    /// Panics if the parts are structurally inconsistent (wrong lengths,
    /// out-of-range endpoints, no unique source/sink).
    pub fn from_parts(weights: Vec<f64>, labels: Vec<Label>, edges: Vec<SpgEdge>) -> Self {
        let n = weights.len();
        assert_eq!(labels.len(), n, "labels/weights length mismatch");
        assert!(n >= 2, "an SPG has at least two stages");
        let mut succ = vec![Vec::new(); n];
        let mut pred = vec![Vec::new(); n];
        for (k, e) in edges.iter().enumerate() {
            assert!(
                e.src.idx() < n && e.dst.idx() < n,
                "edge endpoint out of range"
            );
            assert!(e.src != e.dst, "self-loop in SPG");
            succ[e.src.idx()].push(EdgeId(k as u32));
            pred[e.dst.idx()].push(EdgeId(k as u32));
        }
        let sources: Vec<usize> = (0..n).filter(|&i| pred[i].is_empty()).collect();
        let sinks: Vec<usize> = (0..n).filter(|&i| succ[i].is_empty()).collect();
        assert_eq!(sources.len(), 1, "SPG must have a unique source");
        assert_eq!(sinks.len(), 1, "SPG must have a unique sink");
        Spg {
            weights,
            labels,
            edges,
            succ,
            pred,
            source: StageId(sources[0] as u32),
            sink: StageId(sinks[0] as u32),
        }
    }

    /// Number of stages `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.weights.len()
    }

    /// Number of edges.
    #[inline]
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// All stage ids, in index order.
    pub fn stages(&self) -> impl ExactSizeIterator<Item = StageId> + '_ {
        (0..self.n() as u32).map(StageId)
    }

    /// The edge list.
    #[inline]
    pub fn edges(&self) -> &[SpgEdge] {
        &self.edges
    }

    /// One edge by id.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> &SpgEdge {
        &self.edges[e.idx()]
    }

    /// Computation requirement `w_i` (cycles per data set).
    #[inline]
    pub fn weight(&self, i: StageId) -> f64 {
        self.weights[i.idx()]
    }

    /// All weights, indexed by stage.
    #[inline]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Label `(x_i, y_i)` of a stage.
    #[inline]
    pub fn label(&self, i: StageId) -> Label {
        self.labels[i.idx()]
    }

    /// All labels, indexed by stage.
    #[inline]
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// The unique source stage (label `(1, 1)`).
    #[inline]
    pub fn source(&self) -> StageId {
        self.source
    }

    /// The unique sink stage (label `(xmax, 1)`).
    #[inline]
    pub fn sink(&self) -> StageId {
        self.sink
    }

    /// Outgoing edges of a stage.
    #[inline]
    pub fn out_edges(&self, i: StageId) -> impl Iterator<Item = (EdgeId, &SpgEdge)> + '_ {
        self.succ[i.idx()]
            .iter()
            .map(move |&e| (e, &self.edges[e.idx()]))
    }

    /// Incoming edges of a stage.
    #[inline]
    pub fn in_edges(&self, i: StageId) -> impl Iterator<Item = (EdgeId, &SpgEdge)> + '_ {
        self.pred[i.idx()]
            .iter()
            .map(move |&e| (e, &self.edges[e.idx()]))
    }

    /// Successor stages (with possible duplicates under parallel edges).
    pub fn successors(&self, i: StageId) -> impl Iterator<Item = StageId> + '_ {
        self.out_edges(i).map(|(_, e)| e.dst)
    }

    /// Predecessor stages (with possible duplicates under parallel edges).
    pub fn predecessors(&self, i: StageId) -> impl Iterator<Item = StageId> + '_ {
        self.in_edges(i).map(|(_, e)| e.src)
    }

    /// In-degree (counting parallel edges).
    #[inline]
    pub fn in_degree(&self, i: StageId) -> usize {
        self.pred[i.idx()].len()
    }

    /// Out-degree (counting parallel edges).
    #[inline]
    pub fn out_degree(&self, i: StageId) -> usize {
        self.succ[i.idx()].len()
    }

    /// Maximum `x` label (equals the sink's `x` by construction).
    pub fn xmax(&self) -> u32 {
        self.labels.iter().map(|l| l.x).max().unwrap_or(0)
    }

    /// Maximum elevation `ymax = max_i y_i` (paper §3.1).
    pub fn elevation(&self) -> u32 {
        self.labels.iter().map(|l| l.y).max().unwrap_or(0)
    }

    /// Total computation `Σ w_i`.
    pub fn total_work(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// Total communication `Σ δ_{i,j}`.
    pub fn total_comm(&self) -> f64 {
        self.edges.iter().map(|e| e.volume).sum()
    }

    /// Computation-to-communication ratio `CCR = Σ w_i / Σ δ_{i,j}`
    /// (paper §6.1.1). Returns `f64::INFINITY` for communication-free graphs.
    pub fn ccr(&self) -> f64 {
        let c = self.total_comm();
        if c == 0.0 {
            f64::INFINITY
        } else {
            self.total_work() / c
        }
    }

    /// Rescales every communication volume so the CCR becomes exactly
    /// `target` (paper §6.1.1 scales the StreamIt workloads to CCR 10 / 1 /
    /// 0.1). No-op on communication-free graphs.
    ///
    /// # Panics
    /// Panics if `target` is not strictly positive and finite.
    pub fn scale_to_ccr(&mut self, target: f64) {
        assert!(
            target.is_finite() && target > 0.0,
            "CCR target must be positive"
        );
        let current = self.ccr();
        if !current.is_finite() {
            return;
        }
        let factor = current / target;
        for e in &mut self.edges {
            e.volume *= factor;
        }
    }

    /// Overwrites the stage weights.
    ///
    /// # Panics
    /// Panics on length mismatch or non-finite / negative weights.
    pub fn set_weights(&mut self, weights: Vec<f64>) {
        assert_eq!(weights.len(), self.n());
        assert!(weights.iter().all(|w| w.is_finite() && *w >= 0.0));
        self.weights = weights;
    }

    /// Overwrites the edge volumes (in edge-id order).
    ///
    /// # Panics
    /// Panics on length mismatch or non-finite / negative volumes.
    pub fn set_volumes(&mut self, volumes: Vec<f64>) {
        assert_eq!(volumes.len(), self.n_edges());
        assert!(volumes.iter().all(|v| v.is_finite() && *v >= 0.0));
        for (e, v) in self.edges.iter_mut().zip(volumes) {
            e.volume = v;
        }
    }

    /// A topological order of the stages (source first, sink last).
    pub fn topo_order(&self) -> Vec<StageId> {
        let n = self.n();
        let mut indeg: Vec<usize> = (0..n).map(|i| self.pred[i].len()).collect();
        let mut queue: Vec<StageId> = vec![self.source];
        let mut order = Vec::with_capacity(n);
        while let Some(u) = queue.pop() {
            order.push(u);
            for (_, e) in self.out_edges(u) {
                indeg[e.dst.idx()] -= 1;
                if indeg[e.dst.idx()] == 0 {
                    queue.push(e.dst);
                }
            }
        }
        assert_eq!(order.len(), n, "SPG contains a cycle");
        order
    }

    /// Transitive reachability: `reach[i][j]` iff there is a path `i ⤳ j`
    /// (including `i = j`). Used by the DAG-partition convexity check and by
    /// the exact solver (the ILP's `ℓ*` closure, paper §4.4.1).
    pub fn reachability(&self) -> Vec<Vec<bool>> {
        let n = self.n();
        let mut reach = vec![vec![false; n]; n];
        let order = self.topo_order();
        for &u in order.iter().rev() {
            reach[u.idx()][u.idx()] = true;
            // Collect successor rows into u's row.
            let succs: Vec<StageId> = self.successors(u).collect();
            for s in succs {
                let (head, tail) = if u.idx() < s.idx() {
                    let (a, b) = reach.split_at_mut(s.idx());
                    (&mut a[u.idx()], &b[0])
                } else {
                    let (a, b) = reach.split_at_mut(u.idx());
                    (&mut b[0], &a[s.idx()])
                };
                for j in 0..n {
                    head[j] |= tail[j];
                }
            }
        }
        reach
    }

    /// Checks all structural invariants; returns a human-readable error.
    pub fn check_invariants(&self) -> Result<(), String> {
        let n = self.n();
        // Unique source/sink established at construction; re-verify labels.
        if self.label(self.source) != (Label { x: 1, y: 1 }) {
            return Err(format!(
                "source label must be (1,1), got {:?}",
                self.label(self.source)
            ));
        }
        let xmax = self.xmax();
        if self.label(self.sink) != (Label { x: xmax, y: 1 }) {
            return Err(format!(
                "sink label must be ({xmax},1), got {:?}",
                self.label(self.sink)
            ));
        }
        // Edges strictly increase x.
        for e in &self.edges {
            let (lx, ly) = (self.label(e.src), self.label(e.dst));
            if ly.x <= lx.x {
                return Err(format!(
                    "edge {:?}->{:?} does not increase x ({:?} -> {:?})",
                    e.src, e.dst, lx, ly
                ));
            }
            if !(e.volume.is_finite() && e.volume >= 0.0) {
                return Err(format!(
                    "edge {:?}->{:?} has bad volume {}",
                    e.src, e.dst, e.volume
                ));
            }
        }
        // Labels unique.
        let mut seen = std::collections::HashSet::with_capacity(n);
        for l in &self.labels {
            if !seen.insert((l.x, l.y)) {
                return Err(format!("duplicate label ({}, {})", l.x, l.y));
            }
        }
        // Acyclicity via topo_order (panics on cycle — catch length here).
        let order = self.topo_order();
        if order.len() != n {
            return Err("cycle detected".into());
        }
        // Weights sane.
        for (i, w) in self.weights.iter().enumerate() {
            if !(w.is_finite() && *w >= 0.0) {
                return Err(format!("stage {i} has bad weight {w}"));
            }
        }
        Ok(())
    }

    /// One bit mask per stage holding its predecessor set (capacity `n`).
    /// The DP hot paths test "are all predecessors inside this ideal?" as a
    /// word-level subset check instead of walking edge lists.
    pub fn predecessor_masks(&self) -> Vec<crate::nodeset::NodeSet> {
        let n = self.n();
        let mut masks = vec![crate::nodeset::NodeSet::new(n); n];
        for e in &self.edges {
            masks[e.dst.idx()].insert(e.src.idx());
        }
        masks
    }

    /// The aggregated communication volume leaving a set of stages:
    /// `Σ δ_{i,j}` over edges with `i ∈ set`, `j ∉ set`. This is the paper's
    /// `Cout(G')` (Theorem 1) — the traffic crossing the cut after the
    /// admissible subgraph `G'` on a uni-directional line. Takes a borrowed
    /// set so interned lattice entries can be scored without cloning.
    pub fn cut_volume(&self, set: crate::nodeset::NodeSetRef<'_>) -> f64 {
        self.edges
            .iter()
            .filter(|e| set.contains(e.src.idx()) && !set.contains(e.dst.idx()))
            .map(|e| e.volume)
            .sum()
    }

    /// The aggregated work `Σ w_i` over `i ∈ set` — the work-volume dual of
    /// [`Spg::cut_volume`]. `DPA1D`'s dominance frontier prices a DP state
    /// by the *residual* work `total_work() − work_volume(ideal)`, so both
    /// are summed in ascending stage order: the value is a deterministic
    /// function of the set, independent of how the chain reaching it was
    /// built.
    pub fn work_volume(&self, set: crate::nodeset::NodeSetRef<'_>) -> f64 {
        set.iter().map(|i| self.weights[i]).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compose::{base, chain, parallel, series};

    #[test]
    fn base_spg_shape() {
        let g = base(1.0, 2.0, 3.0);
        assert_eq!(g.n(), 2);
        assert_eq!(g.n_edges(), 1);
        assert_eq!(g.label(g.source()), Label { x: 1, y: 1 });
        assert_eq!(g.label(g.sink()), Label { x: 2, y: 1 });
        assert_eq!(g.weight(g.source()), 1.0);
        assert_eq!(g.weight(g.sink()), 2.0);
        assert_eq!(g.edges()[0].volume, 3.0);
        g.check_invariants().unwrap();
    }

    #[test]
    fn chain_labels_are_linear() {
        let g = chain(&[1.0; 5], &[1.0; 4]);
        assert_eq!(g.n(), 5);
        assert_eq!(g.elevation(), 1);
        assert_eq!(g.xmax(), 5);
        let mut xs: Vec<u32> = g.labels().iter().map(|l| l.x).collect();
        xs.sort_unstable();
        assert_eq!(xs, vec![1, 2, 3, 4, 5]);
        g.check_invariants().unwrap();
    }

    #[test]
    fn ccr_and_scaling() {
        let mut g = chain(&[10.0, 20.0, 30.0], &[3.0, 3.0]);
        assert!((g.ccr() - 10.0).abs() < 1e-12);
        g.scale_to_ccr(1.0);
        assert!((g.ccr() - 1.0).abs() < 1e-12);
        g.scale_to_ccr(0.1);
        assert!((g.ccr() - 0.1).abs() < 1e-12);
        assert!(
            (g.total_work() - 60.0).abs() < 1e-12,
            "scaling must not touch weights"
        );
    }

    #[test]
    fn topo_order_respects_edges() {
        let a = chain(&[1.0; 3], &[1.0; 2]);
        let b = chain(&[1.0; 4], &[1.0; 3]);
        let g = series(&parallel(&a, &b), &chain(&[1.0; 2], &[1.0]));
        let order = g.topo_order();
        let pos: Vec<usize> = {
            let mut p = vec![0; g.n()];
            for (k, s) in order.iter().enumerate() {
                p[s.idx()] = k;
            }
            p
        };
        for e in g.edges() {
            assert!(pos[e.src.idx()] < pos[e.dst.idx()]);
        }
    }

    #[test]
    fn reachability_closure() {
        let g = chain(&[1.0; 4], &[1.0; 3]);
        let r = g.reachability();
        let order = g.topo_order();
        // On a chain, reachability is exactly the order relation.
        for (i, &u) in order.iter().enumerate() {
            for (j, &v) in order.iter().enumerate() {
                assert_eq!(r[u.idx()][v.idx()], i <= j);
            }
        }
    }

    #[test]
    fn cut_volume_matches_manual_sum() {
        let g = chain(&[1.0; 4], &[5.0, 7.0, 9.0]);
        let order = g.topo_order();
        let mut set = crate::nodeset::NodeSet::new(g.n());
        set.insert(order[0].idx());
        set.insert(order[1].idx());
        assert_eq!(g.cut_volume(set.as_set()), 7.0);
    }

    #[test]
    #[should_panic(expected = "unique source")]
    fn two_sources_rejected() {
        let _ = Spg::from_parts(
            vec![1.0, 1.0, 1.0],
            vec![
                Label { x: 1, y: 1 },
                Label { x: 1, y: 2 },
                Label { x: 2, y: 1 },
            ],
            vec![
                SpgEdge {
                    src: StageId(0),
                    dst: StageId(2),
                    volume: 0.0,
                },
                SpgEdge {
                    src: StageId(1),
                    dst: StageId(2),
                    volume: 0.0,
                },
            ],
        );
    }
}
