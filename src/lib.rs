//! # spg-cmp — energy-aware mappings of series-parallel workflows onto CMPs
//!
//! Facade crate for the reproduction of *Benoit, Melhem, Renaud-Goud,
//! Robert — "Energy-aware mappings of series-parallel workflows onto chip
//! multiprocessors"* (INRIA RR-7521 / ICPP 2011).
//!
//! The workspace is organised bottom-up:
//!
//! * [`spg`] — series-parallel graphs: composition with the paper's label
//!   rules, random generators, the StreamIt workload suite, order-ideal
//!   enumeration;
//! * [`platform`] (`cmp-platform`) — the `p × q` DVFS CMP grid: XScale
//!   power model, links, XY/snake routing;
//! * [`mapping`] (`cmp-mapping`) — the cost model: DAG-partition validity,
//!   period (max cycle-time) and energy evaluation;
//! * [`heuristics`] (`ea-core`) — the paper's contribution behind the
//!   solver-session API: an [`prelude::Instance`] owns one `(workload,
//!   platform, period)` triple and caches the derived structures the
//!   algorithms share; every algorithm (`Random`, `Greedy`, `DPA2D`,
//!   `DPA1D`, `DPA2D1D`, the exhaustive exact solver, and the `Refined`
//!   hill-climb combinator) implements [`prelude::Solver`]; a
//!   [`prelude::Portfolio`] races any subset of them, and a
//!   [`prelude::SolverRegistry`] resolves solvers by name.
//!
//! ## Quickstart
//!
//! ```
//! use spg_cmp::prelude::*;
//!
//! // A 10-stage pipeline, 1e8 cycles and 1 kB per stage, on the paper's
//! // 4x4 XScale CMP, with a 200 ms period bound.
//! let app = spg::chain(&[1e8; 10], &[1e3; 9]);
//! let inst = Instance::new(app, Platform::paper(4, 4), 0.2);
//!
//! // Run one solver...
//! let sol = solvers::Greedy::default()
//!     .solve(&inst, &SolveCtx::new(0))
//!     .expect("feasible instance");
//! assert!(sol.eval.max_cycle_time <= 0.2 * (1.0 + 1e-9));
//!
//! // ...or race the paper's whole portfolio (in parallel, deterministic
//! // per-solver seeds) and keep the lowest energy.
//! let report = Portfolio::heuristics().seeded(42).run(&inst);
//! let best = report.best_solution().expect("at least one solver succeeds");
//! println!("best: {:.3} J on {} cores by {}",
//!     best.energy(), best.eval.active_cores, report.best_run().unwrap().name);
//!
//! // Solvers can also be picked by name, e.g. from a CLI flag.
//! let registry = SolverRegistry::with_defaults();
//! let dpa1d = registry.get("dpa1d").unwrap();
//! assert_eq!(dpa1d.name(), "DPA1D");
//! ```
//!
//! ## Migrating from the 0.1 free functions
//!
//! The pre-0.2 free functions remain as thin `#[deprecated]` shims; new
//! code builds an [`prelude::Instance`] once and reuses it:
//!
//! | 0.1 call | 0.2 replacement |
//! |---|---|
//! | `run_heuristic(kind, &g, &pf, t, seed)` | `kind.solver().solve(&inst, &SolveCtx::new(seed))` |
//! | `greedy(&g, &pf, t)` | `solvers::Greedy::default().solve(&inst, &ctx)` |
//! | `random_heuristic(&g, &pf, t, seed)` | `solvers::Random::default().solve(&inst, &ctx)` |
//! | `dpa2d(&g, &pf, t)` | `solvers::Dpa2d.solve(&inst, &ctx)` |
//! | `dpa1d(&g, &pf, t, &cfg)` | `solvers::Dpa1d { cfg }.solve(&inst, &ctx)` |
//! | `dpa2d1d(&g, &pf, t)` | `solvers::Dpa2d1d.solve(&inst, &ctx)` |
//! | `exact(&g, &pf, t, &cfg)` | `solvers::Exact { cfg }.solve(&inst, &ctx)` |
//! | `refine(&g, &pf, &sol, t, &cfg)` | `solvers::Refined::new(inner).solve(&inst, &ctx)` (or keep `refine` — not deprecated) |
//! | run-them-all loops | `Portfolio::heuristics().seeded(seed).run(&inst)` |
//!
//! The instance is where the sharing lives: `DPA1D`'s interned ideal
//! lattice, the snake and topological orders, and the per-stage
//! speed-feasibility table are computed once per instance instead of once
//! per call, which is what makes portfolio runs and §6.1.3 period probes
//! measurably faster than the 0.1 free-function orchestration.

pub use cmp_mapping as mapping;
pub use cmp_platform as platform;
pub use ea_core as heuristics;
pub use spg;

/// Everything needed to build workloads, platforms and run the solvers.
pub mod prelude {
    pub use cmp_mapping::{evaluate, latency, latency_lower_bound, Evaluation, Mapping, RouteSpec};
    pub use cmp_platform::{CoreId, Platform, PowerModel, RouteOrder, Speed};
    pub use ea_core::solvers;
    pub use ea_core::{greedy_opts, refine};
    pub use ea_core::{
        Dpa1dConfig, ExactConfig, Failure, HeuristicKind, Instance, PartitionRule, Portfolio,
        PortfolioReport, Race, RefineConfig, SharedLattice, Solution, SolveCtx, Solver,
        SolverRegistry, SolverRun, ALL_HEURISTICS,
    };
    pub use spg::{self, Spg, SpgGenConfig, StageId};

    // Deprecated 0.1 surface, kept importable so downstream code compiles
    // (with deprecation warnings) while migrating.
    #[allow(deprecated)]
    pub use ea_core::{dpa1d, dpa2d, dpa2d1d, exact, greedy, random_heuristic, run_heuristic};
}
