//! # spg-cmp — energy-aware mappings of series-parallel workflows onto CMPs
//!
//! Facade crate for the reproduction of *Benoit, Melhem, Renaud-Goud,
//! Robert — "Energy-aware mappings of series-parallel workflows onto chip
//! multiprocessors"* (INRIA RR-7521 / ICPP 2011).
//!
//! The workspace is organised bottom-up:
//!
//! * [`spg`] — series-parallel graphs: composition with the paper's label
//!   rules, random generators, the StreamIt workload suite, order-ideal
//!   enumeration;
//! * [`platform`] (`cmp-platform`) — the `p × q` DVFS CMP grid: XScale
//!   power model, links, XY/snake routing;
//! * [`mapping`] (`cmp-mapping`) — the cost model: DAG-partition validity,
//!   period (max cycle-time) and energy evaluation;
//! * [`heuristics`] (`ea-core`) — the paper's contribution: `Random`,
//!   `Greedy`, `DPA2D`, `DPA1D`, `DPA2D1D` and the exhaustive exact solver.
//!
//! ## Quickstart
//!
//! ```
//! use spg_cmp::prelude::*;
//!
//! // A 10-stage pipeline, 1e8 cycles and 1 kB per stage.
//! let app = spg::chain(&[1e8; 10], &[1e3; 9]);
//! // The paper's 4x4 XScale CMP.
//! let pf = Platform::paper(4, 4);
//! // Ask Greedy for a mapping with a 200 ms period bound.
//! let sol = greedy(&app, &pf, 0.2).expect("feasible instance");
//! assert!(sol.eval.max_cycle_time <= 0.2 * (1.0 + 1e-9));
//! println!("energy: {:.3} J on {} cores", sol.energy(), sol.eval.active_cores);
//! ```

pub use cmp_mapping as mapping;
pub use cmp_platform as platform;
pub use ea_core as heuristics;
pub use spg;

/// Everything needed to build workloads, platforms and run the algorithms.
pub mod prelude {
    pub use cmp_mapping::{evaluate, latency, latency_lower_bound, Evaluation, Mapping, RouteSpec};
    pub use cmp_platform::{CoreId, Platform, PowerModel, RouteOrder, Speed};
    pub use ea_core::{
        dpa1d, dpa2d, dpa2d1d, exact, greedy, random_heuristic, refine, run_heuristic, Dpa1dConfig,
        ExactConfig, Failure, HeuristicKind, PartitionRule, RefineConfig, Solution, ALL_HEURISTICS,
    };
    pub use spg::{self, Spg, SpgGenConfig, StageId};
}
