//! # spg-cmp — energy-aware mappings of series-parallel workflows onto CMPs
//!
//! Facade crate for the reproduction of *Benoit, Melhem, Renaud-Goud,
//! Robert — "Energy-aware mappings of series-parallel workflows onto chip
//! multiprocessors"* (INRIA RR-7521 / ICPP 2011).
//!
//! The workspace is organised bottom-up:
//!
//! * [`spg`] — series-parallel graphs: composition with the paper's label
//!   rules, random generators, the StreamIt workload suite, order-ideal
//!   enumeration;
//! * [`platform`] (`cmp-platform`) — the DVFS CMP platform: XScale power
//!   model, pluggable topology backends (mesh / torus / ring) behind the
//!   `Topology` trait, routing policies (XY / YX / shortest / snake)
//!   behind the `Router` trait, and precomputed per-policy route tables;
//! * [`mapping`] (`cmp-mapping`) — the cost model: DAG-partition validity,
//!   period (max cycle-time) and energy evaluation;
//! * [`heuristics`] (`ea-core`) — the paper's contribution behind the
//!   solver-session API: an [`prelude::Instance`] owns one `(workload,
//!   platform, period)` triple and caches the derived structures the
//!   algorithms share; every algorithm (`Random`, `Greedy`, `DPA2D`,
//!   `DPA1D`, `DPA2D1D`, the exhaustive exact solver, and the `Refined`
//!   hill-climb combinator) implements [`prelude::Solver`]; a
//!   [`prelude::Portfolio`] races any subset of them, a
//!   [`prelude::PeriodSweep`] traces whole feasibility/energy curves over
//!   a period or utilisation grid, and a [`prelude::SolverRegistry`]
//!   resolves solvers by name.
//!
//! ## Quickstart
//!
//! ```
//! use spg_cmp::prelude::*;
//!
//! // A 10-stage pipeline, 1e8 cycles and 1 kB per stage, on the paper's
//! // 4x4 XScale CMP, with a 200 ms period bound.
//! let app = spg::chain(&[1e8; 10], &[1e3; 9]);
//! let inst = Instance::new(app, Platform::paper(4, 4), 0.2);
//!
//! // Run one solver...
//! let sol = solvers::Greedy::default()
//!     .solve(&inst, &SolveCtx::new(0))
//!     .expect("feasible instance");
//! assert!(sol.eval.max_cycle_time <= 0.2 * (1.0 + 1e-9));
//!
//! // ...or race the paper's whole portfolio (in parallel, deterministic
//! // per-solver seeds) and keep the lowest energy.
//! let report = Portfolio::heuristics().seeded(42).run(&inst);
//! let best = report.best_solution().expect("at least one solver succeeds");
//! println!("best: {:.3} J on {} cores by {}",
//!     best.energy(), best.eval.active_cores, report.best_run().unwrap().name);
//!
//! // Solvers can also be picked by name, e.g. from a CLI flag.
//! let registry = SolverRegistry::with_defaults();
//! let dpa1d = registry.get("dpa1d").unwrap();
//! assert_eq!(dpa1d.name(), "DPA1D");
//! ```
//!
//! ## Choosing a topology backend
//!
//! `Platform::paper(p, q)` is the paper's mesh with XY routing — the
//! default, and bit-identical to pre-0.3 behaviour. Two more interconnect
//! backends ship behind the same `Platform` type (see
//! [`platform::topology`]): a 2D torus whose wrap links shorten routes
//! under the wrap-aware shortest router, and a 1D ring. Everything above
//! the platform — solvers, evaluation, simulation — is topology-generic:
//!
//! ```
//! use spg_cmp::prelude::*;
//!
//! let app = spg::chain(&[1e8; 10], &[1e3; 9]);
//! // Torus: mesh + wrap links, shortest routing by default. Same-shape
//! // mappings can only get cheaper than on the mesh (routes never grow).
//! let torus = Platform::paper_topology(TopologyKind::Torus, 4, 4);
//! // Ring: 16 cores on a cycle (the p*q grid is flattened).
//! let ring = Platform::paper_topology(TopologyKind::Ring, 4, 4);
//! for pf in [torus, ring] {
//!     let inst = Instance::new(app.clone(), pf, 0.2);
//!     let sol = solvers::Greedy::default()
//!         .solve(&inst, &SolveCtx::new(0))
//!         .expect("feasible");
//!     // The instance caches a per-policy precomputed route table; use
//!     // evaluate_mapping (not the free `evaluate`) to benefit from it.
//!     assert_eq!(inst.evaluate_mapping(&sol.mapping).unwrap().energy, sol.energy());
//! }
//! ```
//!
//! Guidance: keep the **mesh** for paper-faithful reproduction; pick the
//! **torus** when communication dominates and you can afford wrap wiring
//! (it strictly dominates the mesh energy-wise on the same workload);
//! pick the **ring** to study uni-line behaviour at scale — `DPA1D` is
//! provably optimal among uni-line mappings there. Routing policies
//! (`RoutePolicy`: `xy`, `yx`, `shortest`, `snake`) can be overridden per
//! platform via `Platform::with_policy`, and per mapping via `RouteSpec`.
//!
//! ## Workload families and campaigns
//!
//! Beyond the StreamIt suite and the §6.2.2 random SPGs, 0.4 adds seeded
//! workload *families* ([`spg::generate::families`]): a `(family, params,
//! seed)` triple deterministically names one series-parallel workload, so
//! sweeps are reproducible from their keys alone.
//!
//! ```
//! use spg_cmp::prelude::*;
//!
//! // One member of the wide-fork-join family: 24 stages, 4-way fan-out.
//! let spec = WorkloadSpec::new(FamilyKind::WideForkJoin, FamilyParams::sized(24), 7);
//! let app = spec.instantiate();
//! assert_eq!(app.n(), 24);
//!
//! // Utilisation-derived period: comparable bounds across families whose
//! // total work differs by orders of magnitude.
//! let inst = Instance::for_utilisation(app, Platform::paper(4, 4), 0.35);
//! let report = Portfolio::heuristics().seeded(7).run(&inst);
//! assert!(report.best_solution().is_some());
//! ```
//!
//! The `xp campaign` command (crate `ea-bench`, module `campaign`) sweeps
//! families × sizes × utilisations × topologies × routings × solvers as a
//! sharded, resumable job list with append-only JSONL results, and
//! `xp bench-check` gates CI on the deterministic metrics of the committed
//! `BENCH_*.json` baselines (wall-clock metrics are advisory).
//!
//! ## Period sweeps
//!
//! The paper's central experiments are curves versus period tightness;
//! 0.4 makes the whole curve one call. A [`prelude::PeriodSweep`] runs a
//! solver list over a geometric or explicit grid of periods (or platform
//! utilisations) against **one** instance, so the period-independent
//! caches — most importantly `DPA1D`'s interned lattice and its
//! transition skeleton — are built once for the whole curve, and sweep
//! points fan out over the rayon pool:
//!
//! ```
//! use spg_cmp::prelude::*;
//!
//! let app = spg::chain(&[1e8; 8], &[1e3; 7]);
//! let inst = Instance::new(app, Platform::paper(2, 2), 1.0);
//! // One decade, 8 points, all five heuristics per point.
//! let grid = PeriodSweep::geometric(1.0, 0.1, 8);
//! let report = PeriodSweep::over_periods(solvers::default_heuristics(), grid)
//!     .seeded(2011)
//!     .run(&inst);
//! assert_eq!(report.points.len(), 8);
//! // The per-solver feasibility frontier: tightest period still solved.
//! for entry in report.frontier() {
//!     assert!(entry.feasible_points > 0, "{} never succeeded", entry.solver);
//! }
//! // Energy curve of one solver, in grid order (None = failed there).
//! let curve = report.energies("DPA1D");
//! assert_eq!(curve.len(), 8);
//! ```
//!
//! Every sweep point is bit-identical to a from-scratch solve at that
//! period — sharing is a pure optimisation (pinned by `tests/sweep.rs`).
//! `xp sweep` exposes the same engine on the CLI per workload family.
//!
//! Since 0.8, `DPA1D` runs **dominance pruning** by default
//! ([`prelude::Dpa1dConfig`]`::dominance`): a per-ideal Pareto frontier
//! over the DP rows that skips transitions no optimal completion can
//! extend, with ties kept so energies stay bit-identical to the complete
//! relaxation. When a workload's complete transition system overflows the
//! edge cap, the solver now builds a **work-ceiling skeleton** — bounded
//! by the loosest period of the sweep — and streams the rest, so the cap
//! is a soundness-preserving bound instead of a hard `TooExpensive`
//! failure; `Dpa1dConfig::frontier_cap` optionally truncates frontiers
//! and then certifies the result via [`prelude::Solution`]`::bound_gap`.
//!
//! ## Solve-as-a-service
//!
//! 0.7 extends the same sharing across *processes*: `xp serve` keeps a
//! daemon alive behind a Unix or TCP socket, with a byte-bounded LRU
//! cache of the period-independent artifacts keyed by content
//! fingerprints. Warm requests skip derived-state construction and stay
//! bit-identical in energy — the cache holds solver inputs, never
//! answers. The protocol is length-prefixed JSON
//! (`docs/serve-protocol.md`); per-request `deadline_ms` budgets map to
//! solver-level budgets with structured `too_expensive` backpressure.
//! Embedding needs no sockets:
//!
//! ```
//! use spg_cmp::json::Json;
//! use spg_cmp::serve::{ServeConfig, Service};
//!
//! let service = Service::new(ServeConfig::default());
//! let req = Json::parse(
//!     r#"{"op":"solve","workload":{"streamit":"FFT"},"utilisation":0.5}"#,
//! )
//! .unwrap();
//! let cold = service.handle(&req);
//! let warm = service.handle(&req); // artifacts hit; energy is identical
//! assert_eq!(
//!     cold.get("result").and_then(|r| r.get("energy")),
//!     warm.get("result").and_then(|r| r.get("energy")),
//! );
//! ```
//!
//! ## Incremental re-solve under faults and edits
//!
//! 0.9 makes the session **patchable**: when the platform degrades or
//! the workload is retuned, [`prelude::Instance::with_fault`] and
//! [`prelude::Instance::with_edit`] delta-patch the cached derived state
//! instead of discarding it. Core faults reuse every artifact verbatim
//! (routers outlive their PEs), link faults patch only the broken
//! route-table pairs, and structure-preserving [`prelude::Edit`]s keep
//! the enumerated lattice. Patched solves are **bit-identical** in
//! energy to cold solves on the equivalently rebuilt instance — the full
//! invalidation matrix lives in `docs/fault-model.md`, and
//! `docs/architecture.md` maps the whole pipeline:
//!
//! ```
//! use spg_cmp::prelude::*;
//!
//! let app = spg::chain(&[1e8; 8], &[1e3; 7]);
//! let inst = Instance::new(app.clone(), Platform::paper(4, 4), 0.2);
//! let _warm = Portfolio::heuristics().seeded(7).run(&inst); // builds caches
//!
//! // Core (1,2) burns out: remap on the surviving cached state.
//! let dead = CoreId { u: 1, v: 2 };
//! let remap = Portfolio::heuristics()
//!     .seeded(7)
//!     .run(&inst.with_fault(Fault::Core(dead)));
//! // Bit-identical to a cold solve on the faulted platform.
//! let cold = Portfolio::heuristics()
//!     .seeded(7)
//!     .run(&Instance::new(app, Platform::paper(4, 4).with_fault(Fault::Core(dead)), 0.2));
//! assert_eq!(
//!     remap.best_solution().map(|s| s.energy()),
//!     cold.best_solution().map(|s| s.energy()),
//! );
//! ```
//!
//! Deadline-starved portfolios can opt into **anytime mode**
//! (`Portfolio::anytime(true)`, or `"anytime": true` on the serve wire):
//! instead of bare `too_expensive` backpressure the portfolio appends an
//! un-budgeted `Greedy` rescue and certifies its energy against
//! [`prelude::Instance::energy_lower_bound`], so
//! `E_anytime − bound_gap ≤ E_opt ≤ E_anytime`. The serve daemon keys
//! its cache fault-aware (skeletons strip all faults, routes strip core
//! faults), so a warm daemon stays warm across faults; `xp sweep
//! --suite incremental` measures remap-vs-cold latency over a seeded
//! StreamIt fault campaign and gates the ≥2× median speedup in
//! `BENCH_incremental.json`.
//!
//! ## Migrating from the 0.1 free functions
//!
//! The pre-0.2 free functions remain as thin `#[deprecated]` shims; new
//! code builds an [`prelude::Instance`] once and reuses it:
//!
//! | 0.1 call | 0.2 replacement |
//! |---|---|
//! | `run_heuristic(kind, &g, &pf, t, seed)` | `kind.solver().solve(&inst, &SolveCtx::new(seed))` |
//! | `greedy(&g, &pf, t)` | `solvers::Greedy::default().solve(&inst, &ctx)` |
//! | `random_heuristic(&g, &pf, t, seed)` | `solvers::Random::default().solve(&inst, &ctx)` |
//! | `dpa2d(&g, &pf, t)` | `solvers::Dpa2d.solve(&inst, &ctx)` |
//! | `dpa1d(&g, &pf, t, &cfg)` | `solvers::Dpa1d { cfg }.solve(&inst, &ctx)` |
//! | `dpa2d1d(&g, &pf, t)` | `solvers::Dpa2d1d.solve(&inst, &ctx)` |
//! | `exact(&g, &pf, t, &cfg)` | `solvers::Exact { cfg }.solve(&inst, &ctx)` |
//! | `refine(&g, &pf, &sol, t, &cfg)` | `solvers::Refined::new(inner).solve(&inst, &ctx)` (or keep `refine` — not deprecated) |
//! | run-them-all loops | `Portfolio::heuristics().seeded(seed).run(&inst)` |
//!
//! The instance is where the sharing lives: `DPA1D`'s interned ideal
//! lattice, the snake and topological orders, the per-stage
//! speed-feasibility table, and (since 0.3) the per-policy precomputed
//! route tables are computed once per instance instead of once per call,
//! which is what makes portfolio runs and §6.1.3 period probes measurably
//! faster than the 0.1 free-function orchestration.
//!
//! ## Migrating from 0.2 (topology backends)
//!
//! 0.3 generalises the platform over pluggable interconnect backends. The
//! paper's mesh remains the default and `Platform::paper` results are
//! bit-identical; the few signature changes:
//!
//! | 0.2 | 0.3 |
//! |---|---|
//! | `Platform { p, q, power, bw, e_bit, p_leak_comm }` literals | add `topology`/`policy` fields, or spread `..Platform::paper(p, q)` |
//! | `pf.neighbours(c) -> Vec<CoreId>` | allocation-free iterator (`.count()` instead of `.len()`, etc.) |
//! | `pf.link_index(l)` trusted adjacent inputs | panics on links the topology does not own (wrap links valid on torus/ring) |
//! | `evaluate(spg, pf, m, t)` | unchanged — or `inst.evaluate_mapping(&m)` / `evaluate_with(…, Some(&table))` for the route-table fast path |
//! | `refine(…)` | unchanged (builds a local table) — or `refine_with(…, Some(&table))` |
//! | `simulate(…)` | unchanged — or `simulate_with(…, Some(&table))` |
//!
//! ## Migrating from 0.6 (JSON moved into the core)
//!
//! 0.7 promotes the dependency-free JSON module from `ea_bench::json`
//! into `ea_core::json` (re-exported here as [`json`]) so the serve
//! protocol can use it without depending on the bench crate.
//! `ea_bench::json` remains as a `#[deprecated]` re-export; swap
//! `use ea_bench::json::...` for `use spg_cmp::json::...` (or
//! `ea_core::json::...`) — names and behaviour are unchanged.
//!
//! ## Migrating from 0.7 (dominance pruning, certified bounds)
//!
//! 0.8 adds the state-reduction layer to `DPA1D`. Energies are
//! **bit-identical** wherever 0.7 produced one (pinned by
//! `tests/prune.rs` and the committed baselines); what changed:
//!
//! | 0.7 | 0.8 |
//! |---|---|
//! | `Dpa1dConfig { ideal_cap, edge_cap, relax_par_threshold }` literals | add `dominance: bool` (default `true`) and `frontier_cap: usize` (default `usize::MAX`), or spread `..Dpa1dConfig::default()` |
//! | `Solution { mapping, eval }` literals | add `prune: Option<PruneStats>` (`None` for non-`DPA1D` solvers; `validated` fills it) |
//! | complete transition system over `edge_cap` ⇒ `Failure::TooExpensive(Materialise)` | a bounded work-ceiling skeleton + per-period streaming solve the point exactly; set `dominance: false` to restore the 0.7 hard failure |
//! | no way to trade exactness for state | `frontier_cap: n` truncates each frontier to `n` states and returns a solution carrying a certified `Solution::bound_gap()` (the true optimum lies within the gap) instead of failing |
//! | — | `PruneStats` telemetry (`transitions_kept` / `transitions_pruned` / `frontier_max` / `bound_gap`) on `Solution::prune`, surfaced as optional campaign-JSONL fields, in serve `solve`/`sweep` responses, and aggregated in the daemon's `stats.prune` object |

pub use cmp_mapping as mapping;
pub use cmp_platform as platform;
pub use ea_core as heuristics;
/// Dependency-free JSON support (moved from `ea_bench::json` in 0.7).
pub use ea_core::json;
/// Solve-as-a-service: the `xp serve` daemon's server, client, and
/// artifact-cache building blocks.
pub use ea_core::serve;
pub use spg;

/// Everything needed to build workloads, platforms and run the solvers.
pub mod prelude {
    pub use cmp_mapping::{
        evaluate, evaluate_with, latency, latency_lower_bound, Evaluation, Mapping, RouteSpec,
    };
    pub use cmp_platform::{
        CoreId, Fault, FaultSet, Platform, PowerModel, RouteOrder, RoutePolicy, RouteTable, Router,
        Speed, Topology, TopologyKind,
    };
    pub use ea_core::solvers;
    pub use ea_core::{greedy_opts, refine, refine_with};
    pub use ea_core::{
        BudgetExceeded, BudgetPhase, Dpa1dConfig, ExactConfig, Failure, HeuristicKind, Instance,
        PartitionRule, PeriodSweep, Portfolio, PortfolioReport, PruneStats, Race, RefineConfig,
        SharedLattice, Solution, SolveCtx, SolveOutcome, Solver, SolverRegistry, SolverRun,
        SweepAxis, SweepPoint, SweepReport, TransitionSkeleton, ALL_HEURISTICS,
    };
    pub use spg::{
        self, EdgeId, Edit, FamilyKind, FamilyParams, Spg, SpgGenConfig, StageId, WorkloadSpec,
    };

    // Deprecated 0.1 surface, kept importable so downstream code compiles
    // (with deprecation warnings) while migrating.
    #[allow(deprecated)]
    pub use ea_core::{dpa1d, dpa2d, dpa2d1d, exact, greedy, random_heuristic, run_heuristic};
}
