//! Random-SPG sweep: how the heuristic ranking flips with elevation (the
//! phenomenon behind paper Figures 10–13). Low elevation favours the 1D
//! heuristics; high elevation favours `DPA2D`; `Greedy` is the robust
//! all-rounder.
//!
//! ```sh
//! cargo run --release --example random_sweep [apps-per-point]
//! ```

use ea_bench::probe_instance;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spg_cmp::prelude::*;

fn main() {
    let apps: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(5);
    let pf = Platform::paper(4, 4);
    let ccr = 1.0;
    let portfolio = Portfolio::heuristics();
    let names = portfolio.solver_names();
    println!("n = 50 stages, CCR = {ccr}, 4x4 CMP, {apps} apps per elevation\n");
    println!(
        "{:>4}  {:>7} {:>7} {:>7} {:>7} {:>7}   (mean E_best/E_h; 0 = always fails)",
        "elev", names[0], names[1], names[2], names[3], names[4]
    );

    for elevation in [1u32, 2, 4, 6, 8, 12, 16, 20] {
        let mut sums = [0.0f64; 5];
        for app in 0..apps {
            let seed = 1000 + elevation as u64 * 97 + app as u64;
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let cfg = SpgGenConfig {
                n: 50,
                elevation,
                ccr: Some(ccr),
                ..Default::default()
            };
            let g = spg::random_spg(&cfg, &mut rng);
            let Some(inst) = probe_instance(&Instance::new(g, pf.clone(), 1.0), seed) else {
                continue;
            };
            let report = Portfolio::heuristics().seeded(seed).run(&inst);
            let best = report.best_energy();
            for (k, run) in report.runs.iter().enumerate() {
                if let (Some(e), Some(b)) = (run.energy(), best) {
                    sums[k] += b / e;
                }
            }
        }
        print!("{elevation:>4}  ");
        for s in sums {
            print!("{:>7.3} ", s / apps as f64);
        }
        println!();
    }
}
