//! Random-SPG sweep: how the heuristic ranking flips with elevation (the
//! phenomenon behind paper Figures 10–13). Low elevation favours the 1D
//! heuristics; high elevation favours `DPA2D`; `Greedy` is the robust
//! all-rounder.
//!
//! ```sh
//! cargo run --release --example random_sweep [apps-per-point]
//! ```

use ea_bench::probe_period;
use ea_bench::runner::run_all_heuristics;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spg_cmp::prelude::*;

fn main() {
    let apps: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(5);
    let pf = Platform::paper(4, 4);
    let ccr = 1.0;
    println!("n = 50 stages, CCR = {ccr}, 4x4 CMP, {apps} apps per elevation\n");
    println!(
        "{:>4}  {:>7} {:>7} {:>7} {:>7} {:>7}   (mean E_best/E_h; 0 = always fails)",
        "elev", "Random", "Greedy", "DPA2D", "DPA1D", "DPA2D1D"
    );

    for elevation in [1u32, 2, 4, 6, 8, 12, 16, 20] {
        let mut sums = [0.0f64; 5];
        for app in 0..apps {
            let seed = 1000 + elevation as u64 * 97 + app as u64;
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let cfg = SpgGenConfig {
                n: 50,
                elevation,
                ccr: Some(ccr),
                ..Default::default()
            };
            let g = spg::random_spg(&cfg, &mut rng);
            let Some(t) = probe_period(&g, &pf, seed) else {
                continue;
            };
            let outcomes = run_all_heuristics(&g, &pf, t, seed);
            let best = outcomes
                .iter()
                .filter_map(|o| o.energy())
                .min_by(|a, b| a.partial_cmp(b).unwrap());
            for (k, o) in outcomes.iter().enumerate() {
                if let (Some(e), Some(b)) = (o.energy(), best) {
                    sums[k] += b / e;
                }
            }
        }
        print!("{elevation:>4}  ");
        for s in sums {
            print!("{:>7.3} ", s / apps as f64);
        }
        println!();
    }
}
