//! Execute a mapping in the discrete-event simulator and compare the
//! *measured* steady-state period and energy against the paper's analytic
//! model — the "does the math match reality?" check.
//!
//! ```sh
//! cargo run --release --example simulate_mapping
//! ```

use spg_cmp::prelude::*;
use stream_sim::{simulate, SimConfig};

fn main() {
    // A fork-join workload: light source/sink, two heavy parallel branches.
    let branch = || spg::chain(&[1e3, 3e8, 3e8, 1e3], &[2e5, 2e5, 2e5]);
    let app = spg::parallel(&branch(), &branch());
    let inst = Instance::new(app, Platform::paper(4, 4), 0.4);

    println!(
        "fork-join: {} stages, elevation {}, CCR {:.1}; T = {} s\n",
        inst.spg().n(),
        inst.spg().elevation(),
        inst.spg().ccr(),
        inst.period()
    );
    println!(
        "{:<10} {:>14} {:>14} {:>12} {:>12}",
        "heuristic", "analytic T*", "simulated T*", "E_dyn/set", "sim E_dyn/set"
    );
    let report = Portfolio::heuristics().seeded(1).run(&inst);
    for run in &report.runs {
        match &run.result {
            Ok(sol) => {
                let rep = simulate(
                    inst.spg(),
                    inst.platform(),
                    &sol.mapping,
                    SimConfig::default(),
                )
                .expect("valid mapping must simulate");
                println!(
                    "{:<10} {:>14.5} {:>14.5} {:>12.5} {:>12.5}",
                    run.name,
                    sol.eval.max_cycle_time,
                    rep.achieved_period,
                    sol.eval.compute_dynamic + sol.eval.comm_dynamic,
                    rep.dynamic_energy_per_dataset(),
                );
            }
            Err(why) => println!("{:<10} fail ({why})", run.name),
        }
    }
    println!("\nT* = steady-state period (bottleneck cycle-time); the analytic");
    println!("model and the discrete-event execution must agree for valid mappings.");
}
