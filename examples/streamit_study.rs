//! StreamIt case study: probe the period bound for one workflow (as in
//! paper §6.1.3) and study how each heuristic's energy degrades as the
//! communication weight grows (the CCR sweep of §6.2.1).
//!
//! Each CCR variant builds one `Instance`; the probe and the portfolio run
//! share its cached lattice across all probed decades.
//!
//! ```sh
//! cargo run --release --example streamit_study [workflow-index 1..=12]
//! ```

use ea_bench::probe_instance;
use spg::{streamit_workflow, STREAMIT_SPECS};
use spg_cmp::prelude::*;

fn main() {
    let idx: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1);
    let spec = STREAMIT_SPECS
        .iter()
        .find(|s| s.index == idx)
        .unwrap_or_else(|| panic!("workflow index must be 1..=12, got {idx}"));
    let pf = Platform::paper(4, 4);
    println!(
        "workflow {} ({}): n = {}, ymax = {}, xmax = {}, original CCR = {}\n",
        spec.index, spec.name, spec.n, spec.ymax, spec.xmax, spec.ccr
    );

    let portfolio = Portfolio::heuristics().seeded(2011);
    for (label, ccr) in [
        ("original", None),
        ("10", Some(10.0)),
        ("1", Some(1.0)),
        ("0.1", Some(0.1)),
    ] {
        let mut g = streamit_workflow(spec, 2011);
        if let Some(c) = ccr {
            g.scale_to_ccr(c);
        }
        let base = Instance::new(g, pf.clone(), 1.0);
        let Some(inst) = probe_instance(&base, 2011) else {
            println!("CCR {label}: no heuristic succeeds at any probed period");
            continue;
        };
        let report = portfolio.run(&inst);
        let best = report.best_energy();
        println!("CCR {label}: probed period T = {:.0e} s", inst.period());
        for run in &report.runs {
            match (run.energy(), best) {
                (Some(e), Some(b)) => {
                    println!(
                        "  {:<8} E = {e:.4e} J  (x{:.3} of best, {:.1} ms)",
                        run.name,
                        e / b,
                        run.wall.as_secs_f64() * 1e3
                    )
                }
                _ => println!("  {:<8} fail", run.name),
            }
        }
        println!();
    }
}
