//! Exact-vs-heuristics on a 2×2 CMP — the scale at which the paper could
//! solve its integer linear program (§4.4). Shows how far each heuristic is
//! from the true optimum, and what relaxing the DAG-partition rule to
//! general mappings (the paper's §7 future work) buys.
//!
//! ```sh
//! cargo run --release --example exact_small
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spg_cmp::prelude::*;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let cfg = SpgGenConfig {
        n: 8,
        elevation: 2,
        ccr: Some(1.0),
        ..Default::default()
    };
    let g = spg::random_spg(&cfg, &mut rng);
    let inst = Instance::new(g, Platform::paper(2, 2), 5e-3);

    println!(
        "random SPG: n = {}, ymax = {}, CCR = {:.1}; 2x2 CMP, T = {} s\n",
        inst.spg().n(),
        inst.spg().elevation(),
        inst.spg().ccr(),
        inst.period()
    );

    let ctx = SolveCtx::new(7);
    let opt = solvers::Exact::default()
        .solve(&inst, &ctx)
        .expect("solvable instance");
    println!(
        "exact optimum (DAG-partition rule): {:.6e} J on {} cores",
        opt.energy(),
        opt.eval.active_cores
    );

    let general = solvers::Exact {
        cfg: ExactConfig {
            rule: PartitionRule::General,
            ..Default::default()
        },
    }
    .solve(&inst, &ctx)
    .expect("solvable instance");
    println!(
        "exact optimum (general mappings):    {:.6e} J  ({:.2}% below DAG-partition)\n",
        general.energy(),
        (1.0 - general.energy() / opt.energy()) * 100.0
    );

    let report = Portfolio::heuristics().seeded(7).run(&inst);
    for run in &report.runs {
        match &run.result {
            Ok(sol) => println!(
                "{:<8} {:.6e} J  (x{:.4} of optimal)",
                run.name,
                sol.energy(),
                sol.energy() / opt.energy()
            ),
            Err(why) => println!("{:<8} fail ({why})", run.name),
        }
    }
}
