//! Exact-vs-heuristics on a 2×2 CMP — the scale at which the paper could
//! solve its integer linear program (§4.4). Shows how far each heuristic is
//! from the true optimum, and what relaxing the DAG-partition rule to
//! general mappings (the paper's §7 future work) buys.
//!
//! ```sh
//! cargo run --release --example exact_small
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spg_cmp::prelude::*;

fn main() {
    let pf = Platform::paper(2, 2);
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let cfg = SpgGenConfig {
        n: 8,
        elevation: 2,
        ccr: Some(1.0),
        ..Default::default()
    };
    let g = spg::random_spg(&cfg, &mut rng);
    let period = 5e-3;

    println!(
        "random SPG: n = {}, ymax = {}, CCR = {:.1}; 2x2 CMP, T = {period} s\n",
        g.n(),
        g.elevation(),
        g.ccr()
    );

    let opt = exact(&g, &pf, period, &ExactConfig::default()).expect("solvable instance");
    println!(
        "exact optimum (DAG-partition rule): {:.6e} J on {} cores",
        opt.energy(),
        opt.eval.active_cores
    );

    let general = exact(
        &g,
        &pf,
        period,
        &ExactConfig {
            rule: PartitionRule::General,
            ..Default::default()
        },
    )
    .expect("solvable instance");
    println!(
        "exact optimum (general mappings):    {:.6e} J  ({:.2}% below DAG-partition)\n",
        general.energy(),
        (1.0 - general.energy() / opt.energy()) * 100.0
    );

    for kind in ALL_HEURISTICS {
        match run_heuristic(kind, &g, &pf, period, 7) {
            Ok(sol) => println!(
                "{:<8} {:.6e} J  (x{:.4} of optimal)",
                kind.name(),
                sol.energy(),
                sol.energy() / opt.energy()
            ),
            Err(why) => println!("{:<8} fail ({why})", kind.name()),
        }
    }
}
