//! Quickstart: map a small streaming pipeline onto the paper's 4×4 XScale
//! CMP and race all five heuristics through the portfolio API.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use spg_cmp::prelude::*;

fn main() {
    // An 8-stage video-filter-style pipeline: 2×10^8 cycles per stage and
    // 64 kB frames flowing between stages, one data set per period.
    let app = spg::chain(&[2e8; 8], &[64e3; 7]);

    // Period bound: one frame every 500 ms (two stages per core at 1 GHz).
    // The Instance owns (workload, platform, period) and caches everything
    // the solvers share — notably DPA1D's interned ideal lattice.
    let inst = Instance::new(app, Platform::paper(4, 4), 0.5);

    println!(
        "pipeline: {} stages, CCR = {:.1}",
        inst.spg().n(),
        inst.spg().ccr()
    );
    println!(
        "platform: 4x4 XScale CMP, period bound {} s\n",
        inst.period()
    );
    println!(
        "{:<10} {:>12} {:>7} {:>14}",
        "heuristic", "energy (J)", "cores", "cycle-time (s)"
    );

    // One parallel portfolio run: per-solver energies, failures, and wall
    // times, with deterministic per-solver seeds derived from 42.
    let report = Portfolio::heuristics().seeded(42).run(&inst);
    for run in &report.runs {
        match &run.result {
            Ok(sol) => println!(
                "{:<10} {:>12.4} {:>7} {:>14.4}",
                run.name,
                sol.energy(),
                sol.eval.active_cores,
                sol.eval.max_cycle_time
            ),
            Err(why) => println!("{:<10} {:>12}   ({why})", run.name, "fail"),
        }
    }

    // Inspect the best mapping in detail (the report already raced on
    // energy with NaN-safe total ordering).
    let best = report
        .best_solution()
        .expect("at least one heuristic succeeds");
    println!("\nbest mapping, stage -> core:");
    for s in inst.spg().stages() {
        let c = best.mapping.alloc[s.idx()];
        println!(
            "  S{:<2} (w = {:.1e} cycles) -> C({}, {})",
            s.0,
            inst.spg().weight(s),
            c.u,
            c.v
        );
    }
    println!(
        "\nenergy split: compute {:.4} J dynamic + {:.4} J leak, comm {:.6} J",
        best.eval.compute_dynamic, best.eval.compute_leak, best.eval.comm_dynamic
    );
}
