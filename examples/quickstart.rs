//! Quickstart: map a small streaming pipeline onto the paper's 4×4 XScale
//! CMP and compare all five heuristics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use spg_cmp::prelude::*;

fn main() {
    // An 8-stage video-filter-style pipeline: 2×10^8 cycles per stage and
    // 64 kB frames flowing between stages, one data set per period.
    let app = spg::chain(&[2e8; 8], &[64e3; 7]);
    let pf = Platform::paper(4, 4);

    // Period bound: one frame every 500 ms (two stages per core at 1 GHz).
    let period = 0.5;

    println!("pipeline: {} stages, CCR = {:.1}", app.n(), app.ccr());
    println!("platform: 4x4 XScale CMP, period bound {period} s\n");
    println!(
        "{:<10} {:>12} {:>7} {:>14}",
        "heuristic", "energy (J)", "cores", "cycle-time (s)"
    );

    for kind in ALL_HEURISTICS {
        match run_heuristic(kind, &app, &pf, period, 42) {
            Ok(sol) => println!(
                "{:<10} {:>12.4} {:>7} {:>14.4}",
                kind.name(),
                sol.energy(),
                sol.eval.active_cores,
                sol.eval.max_cycle_time
            ),
            Err(why) => println!("{:<10} {:>12}   ({why})", kind.name(), "fail"),
        }
    }

    // Inspect the best mapping in detail.
    let best = ALL_HEURISTICS
        .iter()
        .filter_map(|&k| run_heuristic(k, &app, &pf, period, 42).ok())
        .min_by(|a, b| a.energy().partial_cmp(&b.energy()).unwrap())
        .expect("at least one heuristic succeeds");
    println!("\nbest mapping, stage -> core:");
    for s in app.stages() {
        let c = best.mapping.alloc[s.idx()];
        println!(
            "  S{:<2} (w = {:.1e} cycles) -> C({}, {})",
            s.0,
            app.weight(s),
            c.u,
            c.v
        );
    }
    println!(
        "\nenergy split: compute {:.4} J dynamic + {:.4} J leak, comm {:.6} J",
        best.eval.compute_dynamic, best.eval.compute_leak, best.eval.comm_dynamic
    );
}
