//! Seeded property tests for the workload-family generators (ISSUE 4).
//!
//! Every family must yield *valid* series-parallel graphs — checked both
//! by the structural invariants (labels, single source/sink, acyclicity)
//! and by the decomposition round-trip: the Valdes–Tarjan–Lawler reduction
//! of `spg::recognize` must collapse every generated graph back to the
//! single source→sink edge, which certifies it was built by series and
//! parallel composition. On top of that: exact sizes, determinism under
//! identical seeds, seed sensitivity, and solver-facing sanity via
//! `Instance::for_utilisation`.

use spg::generate::families::{FamilyKind, FamilyParams, WorkloadSpec};
use spg::recognize;
use spg_cmp::prelude::*;

/// The seeds every property below sweeps (arbitrary but fixed).
const SEEDS: [u64; 4] = [1, 7, 2011, 0xDEAD_BEEF];

#[test]
fn every_family_round_trips_the_sp_decomposition() {
    for kind in FamilyKind::ALL {
        for n in [2usize, 3, 5, 9, 17, 40, 80] {
            for seed in SEEDS {
                let g = WorkloadSpec::new(kind, FamilyParams::sized(n), seed).instantiate();
                assert_eq!(g.n(), n, "{kind} n={n} seed={seed}: wrong size");
                g.check_invariants()
                    .unwrap_or_else(|e| panic!("{kind} n={n} seed={seed}: {e}"));
                let rec = recognize(&g);
                assert!(
                    rec.is_series_parallel,
                    "{kind} n={n} seed={seed}: VTL reduction stalled with {} residual nodes",
                    rec.residual_nodes
                );
            }
        }
    }
}

#[test]
fn identical_seeds_reproduce_graphs_bit_for_bit() {
    for kind in FamilyKind::ALL {
        for seed in SEEDS {
            let spec = WorkloadSpec::new(kind, FamilyParams::sized(30), seed);
            let a = spec.instantiate();
            let b = spec.instantiate();
            assert_eq!(a.n(), b.n());
            assert_eq!(a.labels(), b.labels(), "{kind} seed={seed}: labels drift");
            // Weights and volumes must match to the bit, not approximately.
            let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(
                bits(a.weights()),
                bits(b.weights()),
                "{kind} seed={seed}: weights drift"
            );
            let vols = |g: &Spg| {
                g.edges()
                    .iter()
                    .map(|e| e.volume.to_bits())
                    .collect::<Vec<_>>()
            };
            assert_eq!(vols(&a), vols(&b), "{kind} seed={seed}: volumes drift");
        }
    }
}

#[test]
fn different_seeds_differ() {
    for kind in FamilyKind::ALL {
        let a = WorkloadSpec::new(kind, FamilyParams::sized(30), 1).instantiate();
        let b = WorkloadSpec::new(kind, FamilyParams::sized(30), 2).instantiate();
        assert_ne!(
            a.weights(),
            b.weights(),
            "{kind}: the seed does not reach the cost draws"
        );
    }
}

#[test]
fn family_shapes_are_distinct() {
    let params = FamilyParams::sized(40);
    let chain = WorkloadSpec::new(FamilyKind::DeepChain, params.clone(), 3).instantiate();
    assert_eq!(chain.elevation(), 1);
    assert_eq!(chain.xmax(), 40);

    let fj = WorkloadSpec::new(FamilyKind::WideForkJoin, params.clone(), 3).instantiate();
    assert_eq!(
        fj.elevation(),
        params.width,
        "fork-join blocks fan the configured width"
    );
    assert!(fj.xmax() < 40, "fork-join must not degenerate to a chain");

    let bal = WorkloadSpec::new(FamilyKind::Balanced, params.clone(), 3).instantiate();
    assert!(
        bal.elevation() >= params.width,
        "balanced splits in parallel"
    );

    let unb = WorkloadSpec::new(FamilyKind::Unbalanced, params.clone(), 3).instantiate();
    assert!(unb.elevation() >= 2, "unbalanced recursion must branch");

    let tgff = WorkloadSpec::new(FamilyKind::TgffMixed, params, 3).instantiate();
    assert!(
        tgff.elevation() >= 1 && tgff.elevation() <= 4,
        "tgff-mixed elevation is seeded within the width bound"
    );
}

#[test]
fn width_and_depth_clamp_instead_of_panicking() {
    // Absurd knobs on tiny graphs: the generators must clamp, hit the
    // exact size, and stay series-parallel.
    for kind in FamilyKind::ALL {
        for n in [2usize, 3, 4, 5, 6] {
            let params = FamilyParams {
                n,
                width: 64,
                depth: 30,
                ..FamilyParams::default()
            };
            let g = WorkloadSpec::new(kind, params, 9).instantiate();
            assert_eq!(g.n(), n, "{kind} n={n}");
            assert!(recognize(&g).is_series_parallel, "{kind} n={n}");
        }
    }
}

#[test]
fn ccr_rescaling_is_exact_across_families() {
    for kind in FamilyKind::ALL {
        for target in [0.1, 1.0, 10.0] {
            let params = FamilyParams {
                ccr: Some(target),
                ..FamilyParams::sized(25)
            };
            let g = WorkloadSpec::new(kind, params, 4).instantiate();
            assert!(
                (g.ccr() - target).abs() / target < 1e-9,
                "{kind} at CCR {target}: got {}",
                g.ccr()
            );
        }
    }
}

#[test]
fn generated_workloads_solve_end_to_end_at_fixed_utilisation() {
    // The campaign path in miniature: generate → utilisation period →
    // solve. Greedy must find a mapping on every family at a loose
    // utilisation, and the solution must respect the derived period.
    for kind in FamilyKind::ALL {
        let g = WorkloadSpec::new(kind, FamilyParams::sized(12), 2011).instantiate();
        let inst = Instance::for_utilisation(g, Platform::paper(2, 3), 0.2);
        let sol = solvers::Greedy::default()
            .solve(&inst, &SolveCtx::new(2011))
            .unwrap_or_else(|e| panic!("{kind}: {e}"));
        assert!(sol.energy() > 0.0);
        assert!(
            sol.eval.max_cycle_time <= inst.period() * (1.0 + 1e-9),
            "{kind}"
        );
    }
}
