//! Cross-validation of the analytic cost model (paper §3.4–§3.5) against
//! discrete-event execution: for every heuristic's mapping, the simulated
//! steady-state period must converge to the analytic maximum cycle-time,
//! and the simulated dynamic energy per data set must equal the analytic
//! dynamic terms exactly.

use ea_bench::probe_instance;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spg_cmp::prelude::*;
use stream_sim::{simulate, SimConfig};

#[test]
fn simulated_period_converges_to_analytic_cycle_time() {
    let pf = Platform::paper(4, 4);
    let mut rng = ChaCha8Rng::seed_from_u64(17);
    let mut checked = 0usize;
    for (n, elevation, ccr) in [(20usize, 2u32, 10.0), (30, 4, 1.0), (25, 1, 0.1)] {
        let cfg = SpgGenConfig {
            n,
            elevation,
            ccr: Some(ccr),
            ..Default::default()
        };
        let g = spg::random_spg(&cfg, &mut rng);
        let Some(inst) = probe_instance(&Instance::new(g, pf.clone(), 1.0), 17) else {
            continue;
        };
        let report = Portfolio::heuristics().seeded(17).run(&inst);
        for run in &report.runs {
            let Ok(sol) = &run.result else {
                continue;
            };
            let analytic = sol.eval.max_cycle_time;
            let rep = simulate(
                inst.spg(),
                &pf,
                &sol.mapping,
                SimConfig {
                    datasets: 300,
                    warmup: 100,
                },
            )
            .unwrap_or_else(|e| panic!("{}: simulation failed: {e}", run.name));
            // Asymptotically the rate is bottleneck-bound; over a finite
            // window the sink can drain a little faster than the
            // bottleneck (buffers filled during warm-up), hence the
            // two-sided tolerance band.
            assert!(
                rep.achieved_period >= analytic * 0.95,
                "{}: simulated {} far below bottleneck {analytic}",
                run.name,
                rep.achieved_period
            );
            assert!(
                rep.achieved_period <= analytic * 1.05 + 1e-12,
                "{}: simulated {} far above analytic {analytic}",
                run.name,
                rep.achieved_period
            );
            checked += 1;
        }
    }
    assert!(checked >= 8, "only {checked} mappings were cross-validated");
}

#[test]
fn simulated_dynamic_energy_matches_analytic() {
    let pf = Platform::paper(4, 4);
    let g = spg::chain(&[2e8; 6], &[1e5; 5]);
    let t = 0.4;
    let sol = solvers::Greedy::default()
        .solve(&Instance::new(g.clone(), pf.clone(), t), &SolveCtx::new(0))
        .expect("feasible");
    let rep = simulate(
        &g,
        &pf,
        &sol.mapping,
        SimConfig {
            datasets: 120,
            warmup: 20,
        },
    )
    .unwrap();
    let expect = sol.eval.compute_dynamic + sol.eval.comm_dynamic;
    let got = rep.dynamic_energy_per_dataset();
    assert!(
        (got - expect).abs() / expect < 1e-9,
        "sim {got} vs analytic {expect}"
    );
}

#[test]
fn simulator_exposes_utilisation() {
    let pf = Platform::paper(2, 2);
    let g = spg::chain(&[5e8, 5e8], &[1e4]);
    let t = 0.5;
    // Force a two-core split (one stage each at 1 GHz).
    let sol = solvers::Dpa1d::default()
        .solve(&Instance::new(g.clone(), pf.clone(), t), &SolveCtx::new(0))
        .expect("feasible");
    assert_eq!(sol.eval.active_cores, 2);
    let rep = simulate(
        &g,
        &pf,
        &sol.mapping,
        SimConfig {
            datasets: 100,
            warmup: 20,
        },
    )
    .unwrap();
    // Each core computes 0.5 s per 0.5 s period: ~full utilisation.
    let used: Vec<f64> = (0..pf.n_cores())
        .map(|f| rep.core_utilisation(f))
        .filter(|&u| u > 0.0)
        .collect();
    assert_eq!(used.len(), 2);
    for u in used {
        assert!(u > 0.9, "utilisation {u} unexpectedly low");
    }
}
