//! Tests tied to the paper's §4 complexity results: they cannot "test
//! NP-hardness", but they exercise the constructions behind the proofs and
//! the polynomial algorithm of Theorem 1.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spg::ideal::enumerate_ideals;
use spg::{chain, parallel_many, Spg};
use spg_cmp::prelude::*;

/// Exact solve through the session API.
fn exact_solve(g: &Spg, pf: &Platform, t: f64) -> Result<Solution, Failure> {
    solvers::Exact::default().solve(&Instance::new(g.clone(), pf.clone(), t), &SolveCtx::new(0))
}

/// `DPA1D` solve through the session API.
fn dpa1d_solve(g: &Spg, pf: &Platform, t: f64) -> Result<Solution, Failure> {
    solvers::Dpa1d::default().solve(&Instance::new(g.clone(), pf.clone(), t), &SolveCtx::new(0))
}

/// Proposition 1's reduction gadget: a fork-join of n branches on two
/// single-speed cores can meet period S/2 iff the branch weights admit a
/// 2-partition. We check both directions on solvable and unsolvable
/// instances via the exhaustive solver.
#[test]
fn proposition1_two_partition_gadget() {
    let two_cores = Platform {
        power: PowerModel::single(1.0, 1.0, 0.0),
        bw: 1e15,
        e_bit: 0.0,
        ..Platform::paper(1, 2)
    };
    let gadget = |weights: &[f64]| -> Spg {
        let branches: Vec<Spg> = weights
            .iter()
            .map(|&w| chain(&[0.0, w, 0.0], &[0.0, 0.0]))
            .collect();
        parallel_many(&branches)
    };
    // {1,2,3,4}: S = 10, 2-partition exists (1+4 | 2+3) -> T = 5 feasible.
    let g = gadget(&[1.0, 2.0, 3.0, 4.0]);
    assert!(exact_solve(&g, &two_cores, 5.0).is_ok());
    // {1,1,3}: S = 5; no equal split -> T = 2.5 infeasible, T = 3 feasible.
    let g = gadget(&[1.0, 1.0, 3.0]);
    assert!(exact_solve(&g, &two_cores, 2.5).is_err());
    assert!(exact_solve(&g, &two_cores, 3.0).is_ok());
}

/// Theorem 1's counting argument: a fork-join of `ymax` chains of length
/// `n/ymax` asymptotically meets the `n^ymax` admissible-subgraph bound;
/// check the exact closed form `(len+1)^ymax + 2` on small instances.
#[test]
fn theorem1_ideal_count_closed_form() {
    for (branches, inner) in [(2usize, 3usize), (3, 3), (4, 2)] {
        let parts: Vec<Spg> = (0..branches)
            .map(|_| chain(&vec![1.0; inner + 2], &vec![0.0; inner + 1]))
            .collect();
        let g = parallel_many(&parts);
        let lat = enumerate_ideals(&g, 1_000_000).unwrap();
        let expect = (inner + 1).pow(branches as u32) + 2;
        assert_eq!(lat.len(), expect, "branches={branches}, inner={inner}");
    }
}

/// Theorem 1: on a uni-directional uni-line CMP, the DP is optimal for
/// bounded-elevation SPGs. Brute-force all contiguous chain splits of a
/// pipeline and compare.
#[test]
fn theorem1_dp_matches_bruteforce_on_chains() {
    let pf = Platform::paper(1, 3);
    let mut rng = ChaCha8Rng::seed_from_u64(4242);
    use rand::Rng;
    for _ in 0..10 {
        let n = rng.gen_range(4..8);
        let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(1e8..6e8)).collect();
        let volumes: Vec<f64> = (0..n - 1).map(|_| rng.gen_range(1e5..1e7)).collect();
        let g = chain(&weights, &volumes);
        let t = 1.0;
        let dp = dpa1d_solve(&g, &pf, t);
        let brute = brute_force_chain(&g, &pf, t);
        match (dp, brute) {
            (Ok(dp), Some(b)) => {
                assert!(
                    (dp.energy() - b).abs() < 1e-9 * b,
                    "DP {} vs brute-force {}",
                    dp.energy(),
                    b
                );
            }
            (Err(_), None) => {}
            (dp, brute) => panic!(
                "feasibility disagreement: dp ok={}, brute={:?}",
                dp.is_ok(),
                brute
            ),
        }
    }
}

/// Minimal-energy contiguous split of a chain over a 1×q uni-line:
/// exhaustive over all cut positions (the chain's order ideals are its
/// prefixes, so this enumerates exactly the DP's search space).
fn brute_force_chain(g: &Spg, pf: &Platform, t: f64) -> Option<f64> {
    let order = g.topo_order();
    let n = order.len();
    let q = pf.n_cores();
    let weights: Vec<f64> = order.iter().map(|s| g.weight(*s)).collect();
    // Edge volume after position i (between order[i] and order[i+1]).
    let vol_after: Vec<f64> = (0..n - 1)
        .map(|i| {
            g.edges()
                .iter()
                .filter(|e| e.src == order[i] && e.dst == order[i + 1])
                .map(|e| e.volume)
                .sum()
        })
        .collect();
    let mut best: Option<f64> = None;
    // Enumerate all ways to split [0..n) into at most q contiguous groups.
    #[allow(clippy::type_complexity)]
    fn rec(
        pos: usize,
        groups: &mut Vec<(usize, usize)>,
        n: usize,
        q: usize,
        out: &mut dyn FnMut(&[(usize, usize)]),
    ) {
        if pos == n {
            out(groups);
            return;
        }
        if groups.len() == q {
            return;
        }
        for end in pos + 1..=n {
            groups.push((pos, end));
            rec(end, groups, n, q, out);
            groups.pop();
        }
    }
    let pm = &pf.power;
    rec(0, &mut Vec::new(), n, q, &mut |groups| {
        let mut energy = 0.0;
        for &(a, b) in groups {
            let w: f64 = weights[a..b].iter().sum();
            match pm.best_compute_energy(w, t) {
                Some(e) => energy += e,
                None => return,
            }
        }
        for win in groups.windows(2) {
            let cut = vol_after[win[0].1 - 1];
            if cut > t * pf.bw * (1.0 + 1e-9) {
                return;
            }
            energy += pf.hop_energy(cut);
        }
        if best.is_none_or(|b| energy < b) {
            best = Some(energy);
        }
    });
    best
}

/// §4.2's intuition: with a single speed and unit stage costs, a period of
/// 1 forces a one-to-one mapping (any two co-located stages double the
/// cycle-time).
#[test]
fn unit_speed_unit_cost_forces_one_to_one() {
    let pf = Platform {
        power: PowerModel::single(1.0, 1.0, 0.0),
        bw: 1e15,
        e_bit: 0.0,
        ..Platform::paper(1, 4)
    };
    let g = chain(&[1.0; 4], &[1.0; 3]);
    let sol = exact_solve(&g, &pf, 1.0).unwrap();
    assert_eq!(sol.eval.active_cores, 4);
    // Five unit stages cannot fit four cores at period 1.
    let g5 = chain(&[1.0; 5], &[1.0; 4]);
    assert!(exact_solve(&g5, &pf, 1.0).is_err());
}

/// Bounded elevation is what keeps DPA1D polynomial: the unbounded
/// fork-join family blows past any fixed ideal cap (the NP-hard regime of
/// Proposition 1), while fixed-elevation families stay enumerable.
#[test]
fn elevation_separates_tractable_from_explosive() {
    // Fixed elevation 3, growing n: lattice grows polynomially.
    for n in [12usize, 24, 48] {
        let parts: Vec<Spg> = (0..3)
            .map(|_| chain(&vec![1.0; n / 3], &vec![0.0; n / 3 - 1]))
            .collect();
        let g = parallel_many(&parts);
        let lat = enumerate_ideals(&g, 1_000_000).unwrap();
        assert!(lat.len() <= (n + 1).pow(3));
    }
    // Elevation ~ n/2: explosion.
    let parts: Vec<Spg> = (0..16).map(|_| chain(&[1.0; 4], &[0.0; 3])).collect();
    let g = parallel_many(&parts);
    assert!(enumerate_ideals(&g, 100_000).is_err());
}
