//! Equivalence and cross-topology integration tests (ISSUE 3):
//!
//! * the mesh+XY backend is pinned to the pre-refactor behaviour — the
//!   per-solver StreamIt energies recorded in `BENCH_portfolio.json` (PR 2)
//!   must reproduce **bit-identically** through the route-table-driven
//!   evaluator;
//! * `evaluate` (hop-by-hop) and `evaluate_with` (precomputed table) agree
//!   bit-for-bit on every solver solution across the StreamIt suite, on
//!   every topology backend;
//! * torus and ring produce feasible mappings end-to-end (solvers →
//!   evaluate → simulate), and the torus best energy never exceeds the mesh
//!   best energy at the same period.

use std::sync::Arc;

use ea_bench::{default_solvers, probe_instance};
use spg_cmp::prelude::*;
use stream_sim::{simulate_with, SimConfig};

use spg::{streamit_workflow, STREAMIT_SPECS};

/// The paper-campaign period used by the `BENCH_portfolio.json` anchor.
fn bench_period(g: &Spg) -> f64 {
    g.total_work() / (8.0 * 1e9)
}

/// Pin: the exact per-solver energies recorded in `BENCH_portfolio.json`
/// (workflows 1, 8, 9, 12 at seed 2011 on the paper's 4×4 mesh). A solver
/// absent from the table failed back then and must still fail.
#[test]
fn mesh_xy_energies_bit_identical_to_pre_refactor_baseline() {
    let expected: &[(usize, &[(&str, f64)])] = &[
        (
            1,
            &[
                ("Random", 0.041729053769425796),
                ("Greedy", 0.03935835809958631),
                ("DPA2D", 0.03988868079488227),
            ],
        ),
        (
            8,
            &[
                ("Random", 0.029111546618428737),
                ("DPA1D", 0.020625643095337397),
                ("DPA2D1D", 0.02265214266541305),
            ],
        ),
        (
            9,
            &[
                ("Random", 0.010821997320648783),
                ("DPA1D", 0.009582071554103367),
                ("DPA2D1D", 0.009582071554103367),
            ],
        ),
        (
            12,
            &[
                ("Random", 0.019474353010927224),
                ("DPA1D", 0.014683357241549252),
                ("DPA2D1D", 0.014683357241549252),
            ],
        ),
    ];
    let pf = Platform::paper(4, 4);
    for &(idx, solvers) in expected {
        let spec = &STREAMIT_SPECS[idx - 1];
        let g = streamit_workflow(spec, 2011);
        let inst = Instance::new(g.clone(), pf.clone(), bench_period(&g));
        let report = Portfolio::heuristics().seeded(2011).run(&inst);
        for run in &report.runs {
            let pinned = solvers
                .iter()
                .find(|(name, _)| *name == run.name)
                .map(|&(_, e)| e);
            assert_eq!(
                run.energy(),
                pinned,
                "{} on {}: energy drifted from the PR 2 baseline",
                run.name,
                spec.name
            );
        }
    }
}

/// `evaluate` and the table-driven `Instance::evaluate_mapping` agree
/// bit-for-bit on every successful solver solution, across the whole
/// StreamIt suite and all three topology backends.
#[test]
fn table_driven_evaluate_is_bit_identical_across_suite() {
    let solvers = default_solvers();
    for kind in TopologyKind::ALL {
        let pf = Arc::new(Platform::paper_topology(kind, 4, 4));
        for spec in STREAMIT_SPECS.iter() {
            let g = Arc::new(streamit_workflow(spec, 2011));
            let t = bench_period(&g);
            let inst = Instance::from_shared(Arc::clone(&g), Arc::clone(&pf), t);
            for solver in &solvers {
                let Ok(sol) = solver.solve(&inst, &SolveCtx::new(2011)) else {
                    continue;
                };
                let plain = evaluate(&g, &pf, &sol.mapping, t).unwrap();
                let tabled = inst.evaluate_mapping(&sol.mapping).unwrap();
                assert_eq!(
                    plain.energy.to_bits(),
                    tabled.energy.to_bits(),
                    "{} / {} / {kind}",
                    solver.name(),
                    spec.name
                );
                assert_eq!(plain.comm_dynamic.to_bits(), tabled.comm_dynamic.to_bits());
                assert_eq!(
                    plain.max_cycle_time.to_bits(),
                    tabled.max_cycle_time.to_bits()
                );
                assert_eq!(sol.eval.energy.to_bits(), plain.energy.to_bits());
            }
        }
    }
}

/// End-to-end feasibility on the alternative backends: for every StreamIt
/// workflow whose mesh probe succeeds, torus and ring portfolios at the
/// same period produce a feasible best mapping that also *simulates* within
/// the bound — and the torus best energy never exceeds the mesh best
/// (wrap links only ever shorten routes).
#[test]
fn torus_and_ring_feasible_end_to_end_with_torus_dominating_mesh() {
    let mut compared = 0usize;
    for spec in STREAMIT_SPECS.iter() {
        let g = Arc::new(streamit_workflow(spec, 2011));
        let seed = 2011 ^ (spec.index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mesh = Arc::new(Platform::paper(4, 4));
        let base = Instance::from_shared(Arc::clone(&g), mesh, 1.0);
        let Some(probed) = probe_instance(&base, seed) else {
            continue;
        };
        let period = probed.period();
        let mut best = Vec::new();
        for kind in TopologyKind::ALL {
            let pf = Arc::new(Platform::paper_topology(kind, 4, 4));
            let inst = Instance::from_shared(Arc::clone(&g), pf, period);
            let report = Portfolio::heuristics().seeded(seed).run(&inst);
            let Some(sol) = report.best_solution() else {
                best.push(None);
                continue;
            };
            // The winning mapping must execute: simulated steady-state
            // period within the analytic bound (small tolerance for
            // warmup effects).
            let table = inst.route_table_for(&sol.mapping);
            let sim = simulate_with(
                inst.spg(),
                inst.platform(),
                &sol.mapping,
                SimConfig::default(),
                table.as_deref(),
            )
            .unwrap_or_else(|e| panic!("{kind}/{}: simulation failed: {e}", spec.name));
            assert!(
                sim.achieved_period <= period * 1.02,
                "{kind}/{}: simulated period {} exceeds bound {period}",
                spec.name,
                sim.achieved_period
            );
            best.push(Some(sol.energy()));
        }
        if let (Some(mesh_e), Some(torus_e)) = (best[0], best[1]) {
            assert!(
                torus_e <= mesh_e * (1.0 + 1e-12),
                "{}: torus energy {torus_e} exceeds mesh energy {mesh_e}",
                spec.name
            );
            compared += 1;
        }
        // Ring feasibility is asserted by reaching here with Some or a
        // clean portfolio failure; at least the pipeline-ish workflows
        // must succeed on the ring.
        if spec.name == "TDE" || spec.name == "FFT" {
            assert!(best[2].is_some(), "{}: ring portfolio failed", spec.name);
        }
    }
    assert!(
        compared >= 8,
        "only {compared} workflows feasible on both mesh and torus"
    );
}
