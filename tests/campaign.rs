//! Campaign-engine integration tests (ISSUE 4): resumability, shard
//! independence, and the bench-check gate logic on campaign summaries.
//!
//! The guarantees under test are exactly the acceptance criteria:
//!
//! * an interrupted campaign (stream file cut mid-run, even mid-*line*)
//!   resumed with the same spec produces a **byte-identical** final JSONL
//!   to an uninterrupted run;
//! * the union of all shards' results equals the unsharded run's results;
//! * `bench-check` passes a summary against itself and fails it when a
//!   deterministic metric is artificially regressed 2×, while time
//!   metrics stay advisory.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use cmp_platform::TopologyKind;
use ea_bench::bench_check::{compare, parse_bench_metrics, Status};
use ea_bench::campaign::{
    merge_shards, run_campaign, summary_json, CampaignSpec, JobRecord, Shard,
};
use spg::generate::families::FamilyKind;

/// A fresh scratch directory per test invocation.
fn scratch(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "spg-cmp-campaign-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A small but non-trivial spec: 3 families × 2 sizes × 2 topologies ×
/// 2 solvers = 24 jobs, small graphs, fast solvers.
fn test_spec() -> CampaignSpec {
    CampaignSpec {
        name: "itest".into(),
        families: vec![
            FamilyKind::DeepChain,
            FamilyKind::WideForkJoin,
            FamilyKind::Unbalanced,
        ],
        sizes: vec![8, 14],
        seeds: vec![2011],
        topologies: vec![TopologyKind::Mesh, TopologyKind::Ring],
        routings: vec![None],
        solvers: vec!["greedy".into(), "random".into()],
        grid: (2, 2),
        utilisations: vec![0.3],
        width: 3,
        depth: 2,
    }
}

#[test]
fn interrupted_campaign_resumes_to_byte_identical_final_jsonl() {
    let spec = test_spec();

    // Uninterrupted reference run.
    let full_dir = scratch("full");
    let full = run_campaign(&spec, &full_dir, Shard::default()).unwrap();
    assert_eq!(full.fresh, 24);
    let reference = fs::read(&full.final_path).unwrap();
    assert!(!reference.is_empty());

    // "Kill" simulation: keep the header plus the first 9 record lines
    // plus one line truncated mid-write, then restart the campaign on
    // that directory.
    let cut_dir = scratch("cut");
    fs::create_dir_all(&cut_dir).unwrap();
    let stream = fs::read_to_string(&full.stream_path).unwrap();
    let lines: Vec<&str> = stream.lines().collect();
    let mut partial: String = lines[..10].join("\n"); // header + 9 records
    partial.push('\n');
    partial.push_str(&lines[10][..lines[10].len() / 2]); // torn line, no newline
    fs::write(cut_dir.join("itest.jsonl"), &partial).unwrap();

    let resumed = run_campaign(&spec, &cut_dir, Shard::default()).unwrap();
    assert_eq!(resumed.resumed, 9, "the 9 complete lines must be reused");
    assert_eq!(resumed.fresh, 15, "the torn line must be recomputed");
    let resumed_bytes = fs::read(&resumed.final_path).unwrap();
    assert_eq!(
        resumed_bytes, reference,
        "resumed final JSONL must be byte-identical to the uninterrupted run"
    );

    // Idempotence: running again recomputes nothing and changes nothing.
    let again = run_campaign(&spec, &cut_dir, Shard::default()).unwrap();
    assert_eq!(again.fresh, 0);
    assert_eq!(again.resumed, 24);
    assert_eq!(fs::read(&again.final_path).unwrap(), reference);

    let _ = fs::remove_dir_all(&full_dir);
    let _ = fs::remove_dir_all(&cut_dir);
}

#[test]
fn sharded_campaign_equals_unsharded() {
    let spec = test_spec();
    let full_dir = scratch("unsharded");
    let full = run_campaign(&spec, &full_dir, Shard::default()).unwrap();
    let mut reference: Vec<String> = fs::read_to_string(&full.final_path)
        .unwrap()
        .lines()
        .map(str::to_string)
        .collect();
    reference.sort();

    let shard_dir = scratch("sharded");
    let mut merged: Vec<String> = Vec::new();
    for index in 0..3 {
        let shard = Shard { index, count: 3 };
        let out = run_campaign(&spec, &shard_dir, shard).unwrap();
        assert!(out.fresh > 0, "every shard owns some jobs");
        merged.extend(
            fs::read_to_string(&out.final_path)
                .unwrap()
                .lines()
                .map(str::to_string),
        );
    }
    merged.sort();
    assert_eq!(
        merged, reference,
        "the union of the shards must equal the unsharded run"
    );

    let _ = fs::remove_dir_all(&full_dir);
    let _ = fs::remove_dir_all(&shard_dir);
}

#[test]
fn resume_under_a_changed_spec_is_refused() {
    // Job keys do not encode the grid; the stream-file header does.
    // Changing it under the same name + output dir must refuse to resume
    // instead of silently mixing incompatible results.
    let spec = test_spec();
    let dir = scratch("respec");
    run_campaign(&spec, &dir, Shard::default()).unwrap();

    let mut regridded = spec.clone();
    regridded.grid = (2, 3);
    let err = run_campaign(&regridded, &dir, Shard::default()).unwrap_err();
    assert!(err.contains("different campaign spec"), "{err}");

    // The utilisation, by contrast, is a sweep axis encoded in the job
    // keys since the u-axis schema bump: re-targeting it does not clash
    // with the recorded stream, it just runs the (all-new) keys.
    let mut retargeted = spec.clone();
    retargeted.utilisations = vec![0.6];
    let out = run_campaign(&retargeted, &dir, Shard::default()).unwrap();
    assert_eq!(out.resumed, 0, "u=0.6 keys are disjoint from u=0.3 keys");
    assert_eq!(out.fresh, 24);
    assert!(out.records.iter().all(|r| r.key.contains("/u0.6/")));

    // The unchanged spec still resumes cleanly.
    let again = run_campaign(&spec, &dir, Shard::default()).unwrap();
    assert_eq!(again.fresh, 0);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn stream_without_a_valid_header_is_refused() {
    // A non-empty stream whose first line is not a parseable header (torn
    // header write, or a foreign file) cannot be trusted to match the
    // spec: resuming must refuse rather than silently mix results.
    let spec = test_spec();
    let dir = scratch("torn-header");
    fs::create_dir_all(&dir).unwrap();
    fs::write(dir.join("itest.jsonl"), "{\"campaign\":\"ites").unwrap();
    let err = run_campaign(&spec, &dir, Shard::default()).unwrap_err();
    assert!(err.contains("no valid campaign header"), "{err}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn campaign_records_carry_failures_as_data() {
    // An absurdly tight utilisation makes every job infeasible; the
    // campaign must record the failures rather than abort.
    let mut spec = test_spec();
    spec.name = "tight".into();
    spec.utilisations = vec![50.0];
    spec.families = vec![FamilyKind::DeepChain];
    spec.sizes = vec![8];
    let dir = scratch("tight");
    let out = run_campaign(&spec, &dir, Shard::default()).unwrap();
    assert!(!out.records.is_empty());
    for rec in &out.records {
        assert_eq!(rec.energy_j, None, "{}", rec.key);
        assert!(rec.failure.is_some(), "{}", rec.key);
        assert_eq!(rec.utilisation, 50.0, "{}", rec.key);
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn summary_is_bench_compatible_and_gates_like_bench_check() {
    let spec = test_spec();
    let dir = scratch("summary");
    let out = run_campaign(&spec, &dir, Shard::default()).unwrap();

    // The emitted summary parses with the same loader bench-check uses
    // for the committed BENCH_*.json files.
    let text = fs::read_to_string(&out.summary_path).unwrap();
    let metrics = parse_bench_metrics(&text).unwrap();
    assert!(
        metrics.iter().any(|m| m.unit == "J"),
        "summary must contain deterministic energy metrics"
    );
    assert!(
        metrics.iter().any(|m| m.unit == "ms"),
        "summary must contain advisory wall-time metrics"
    );

    // Re-summarising the same records reproduces the deterministic
    // metrics: comparing against itself passes the gate...
    let fresh = parse_bench_metrics(&summary_json(&spec, &out.records)).unwrap();
    let fresh_of = |name: &str| fresh.iter().find(|m| m.name == name).map(|m| m.value);
    let checks = compare(&metrics, fresh_of, 0.05);
    assert!(checks.iter().all(|c| c.status != Status::Fail));
    assert!(checks.iter().any(|c| c.status == Status::Pass));

    // ...while a 2x-regressed deterministic metric fails it, and a
    // 10x-regressed wall-time metric stays advisory.
    let mut regressed = metrics.clone();
    for m in &mut regressed {
        if m.unit == "J" {
            m.value *= 2.0;
        }
        if m.unit == "ms" {
            m.value *= 10.0;
        }
    }
    let checks = compare(&regressed, fresh_of, 0.05);
    assert!(checks.iter().any(|c| c.status == Status::Fail));
    assert!(checks
        .iter()
        .filter(|c| c.unit == "ms")
        .all(|c| c.status == Status::Advisory));

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn merge_shards_reassembles_the_unsharded_final() {
    let spec = test_spec();
    let full_dir = scratch("merge-ref");
    let full = run_campaign(&spec, &full_dir, Shard::default()).unwrap();
    let reference = fs::read(&full.final_path).unwrap();

    // Three shards run "on different machines" (separate dirs), merged.
    let mut inputs = Vec::new();
    let mut shard_dirs = Vec::new();
    for index in 0..3 {
        let dir = scratch(&format!("merge-shard{index}"));
        let out = run_campaign(&spec, &dir, Shard { index, count: 3 }).unwrap();
        inputs.push(out.stream_path.clone());
        shard_dirs.push(dir);
    }
    let merge_dir = scratch("merge-out");
    let merged = merge_shards(&spec, &inputs, &merge_dir).unwrap();
    assert_eq!(merged.records, 24);
    assert_eq!(merged.per_input.iter().sum::<usize>(), 24);
    assert_eq!(
        fs::read(&merged.final_path).unwrap(),
        reference,
        "merged shard artifacts must equal the unsharded final file byte for byte"
    );
    // The merged summary parses like any committed BENCH file.
    let metrics = parse_bench_metrics(&fs::read_to_string(&merged.summary_path).unwrap()).unwrap();
    assert!(metrics.iter().any(|m| m.unit == "J"));

    // Overlap: the same shard twice is rejected.
    let overlap = vec![inputs[0].clone(), inputs[0].clone(), inputs[1].clone()];
    let err = merge_shards(&spec, &overlap, &merge_dir).unwrap_err();
    assert!(err.contains("overlapping"), "{err}");

    // Missing: an incomplete shard set is rejected with the missing count.
    let err = merge_shards(&spec, &inputs[..2], &merge_dir).unwrap_err();
    assert!(err.contains("missing"), "{err}");

    // Foreign: files from a different spec are rejected.
    let mut other = spec.clone();
    other.utilisations = vec![0.5];
    let err = merge_shards(&other, &inputs, &merge_dir).unwrap_err();
    assert!(err.contains("not in campaign"), "{err}");

    // Fingerprint: the grid is not in the keys, only in the stream
    // header — merging streams recorded on a different platform must be
    // refused like the resume path refuses them.
    let mut regridded = spec.clone();
    regridded.grid = (2, 3);
    let err = merge_shards(&regridded, &inputs, &merge_dir).unwrap_err();
    assert!(err.contains("different campaign spec"), "{err}");

    let _ = fs::remove_dir_all(&full_dir);
    let _ = fs::remove_dir_all(&merge_dir);
    for dir in shard_dirs {
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn utilisation_axis_expands_and_records_per_u_jobs() {
    // Two utilisations double the job list, give disjoint key sets, and
    // tighter u never yields lower energy for the same (workload, solver).
    let mut spec = test_spec();
    spec.name = "uaxis".into();
    spec.families = vec![FamilyKind::DeepChain];
    spec.sizes = vec![8];
    spec.topologies = vec![TopologyKind::Mesh];
    spec.utilisations = vec![0.2, 0.4];
    let dir = scratch("uaxis");
    let out = run_campaign(&spec, &dir, Shard::default()).unwrap();
    assert_eq!(out.records.len(), 4, "1 family x 1 size x 2 u x 2 solvers");
    for rec in &out.records {
        assert!(rec.key.contains(&format!("/u{}/", rec.utilisation)));
        assert!(rec.period_s > 0.0);
    }
    // Period halves when utilisation doubles (same workload).
    let loose = out.records.iter().find(|r| r.utilisation == 0.2).unwrap();
    let tight = out.records.iter().find(|r| r.utilisation == 0.4).unwrap();
    assert!((loose.period_s / tight.period_s - 2.0).abs() < 1e-9);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn budget_failures_record_structured_telemetry() {
    // DPA1D with its default caps on a high-elevation TGFF-mixed workload
    // is the paper's §6.2.1 cost wall; at campaign scale the wall shows up
    // as enumerate-phase budget records with cap and count — the fields
    // the elevation-vs-cost plot reads straight from the JSONL.
    let mut spec = test_spec();
    spec.name = "wall".into();
    spec.families = vec![FamilyKind::WideForkJoin];
    spec.sizes = vec![40];
    spec.width = 12;
    spec.depth = 1;
    spec.topologies = vec![TopologyKind::Mesh];
    spec.solvers = vec!["dpa1d".into()];
    let dir = scratch("wall");
    let out = run_campaign(&spec, &dir, Shard::default()).unwrap();
    let budget_recs: Vec<_> = out
        .records
        .iter()
        .filter(|r| r.fail_phase.is_some())
        .collect();
    assert!(
        !budget_recs.is_empty(),
        "a 12-wide fork-join must blow DPA1D's ideal cap"
    );
    for rec in budget_recs {
        assert_eq!(rec.fail_phase.as_deref(), Some("enumerate"));
        assert_eq!(rec.fail_cap, Some(60_000));
        assert!(rec.fail_count.unwrap() > 60_000);
        // The structured fields survive the JSONL round trip.
        let parsed = JobRecord::parse(&rec.canonical_line()).unwrap();
        assert_eq!(parsed.fail_cap, rec.fail_cap);
        assert_eq!(parsed.fail_count, rec.fail_count);
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn stream_lines_parse_back_to_the_recorded_energies() {
    // The stream file is the only thing that survives a kill; its lines
    // must reproduce the in-memory records exactly (modulo ordering).
    let spec = test_spec();
    let dir = scratch("parse");
    let out = run_campaign(&spec, &dir, Shard::default()).unwrap();
    let stream = fs::read_to_string(&out.stream_path).unwrap();
    let mut parsed: Vec<JobRecord> = stream.lines().filter_map(JobRecord::parse).collect();
    parsed.sort_by(|a, b| a.key.cmp(&b.key));
    assert_eq!(parsed.len(), out.records.len());
    for (p, r) in parsed.iter().zip(&out.records) {
        assert_eq!(p.key, r.key);
        assert_eq!(
            p.energy_j.map(f64::to_bits),
            r.energy_j.map(f64::to_bits),
            "{}",
            p.key
        );
        assert_eq!(p.failure, r.failure, "{}", p.key);
    }
    let _ = fs::remove_dir_all(&dir);
}
