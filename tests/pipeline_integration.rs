//! Cross-crate integration tests: workload generation → period probe →
//! solver portfolio → evaluator validation, plus exact-solver cross-checks
//! on small instances — all through the `Instance`/`Solver`/`Portfolio`
//! session API.

use ea_bench::probe_instance;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spg::{streamit_workflow, STREAMIT_SPECS};
use spg_cmp::prelude::*;

/// Every solution any solver returns must re-validate through the shared
/// evaluator at the requested period with identical energy.
#[test]
fn heuristic_solutions_revalidate_exactly() {
    let pf = Platform::paper(4, 4);
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    for elevation in [1u32, 3, 6] {
        let cfg = SpgGenConfig {
            n: 30,
            elevation,
            ccr: Some(1.0),
            ..Default::default()
        };
        let g = spg::random_spg(&cfg, &mut rng);
        let Some(inst) = probe_instance(&Instance::new(g, pf.clone(), 1.0), 0) else {
            continue;
        };
        let report = Portfolio::heuristics().seeded(0).run(&inst);
        for run in &report.runs {
            if let Ok(sol) = &run.result {
                let ev = evaluate(inst.spg(), inst.platform(), &sol.mapping, inst.period())
                    .unwrap_or_else(|e| panic!("{} returned invalid mapping: {e}", run.name));
                assert!(
                    (ev.energy - sol.energy()).abs() < 1e-9 * sol.energy().max(1.0),
                    "{}: reported {} vs revalidated {}",
                    run.name,
                    sol.energy(),
                    ev.energy
                );
            }
        }
    }
}

/// On a uni-line platform, DPA1D (Theorem 1's exact DP) must match the
/// exhaustive solver restricted to the same platform.
#[test]
fn dpa1d_is_optimal_on_uniline() {
    let pf = Platform::paper(1, 4);
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    for trial in 0..8 {
        let cfg = SpgGenConfig {
            n: 7,
            elevation: [1u32, 2][trial % 2],
            ccr: Some([10.0, 0.1][trial % 2]),
            ..Default::default()
        };
        let g = spg::random_spg(&cfg, &mut rng);
        let Some(inst) = probe_instance(&Instance::new(g, pf.clone(), 1.0), trial as u64) else {
            continue;
        };
        let ctx = SolveCtx::new(trial as u64);
        let Ok(dp) = solvers::Dpa1d::default().solve(&inst, &ctx) else {
            continue;
        };
        // The exhaustive solver may route backwards on the line, so it can
        // only be <= DPA1D. On chains and low CCR they coincide; in all
        // cases DPA1D must never be better than exact.
        let ex = solvers::Exact::default()
            .solve(&inst, &ctx)
            .expect("exact must succeed");
        assert!(
            dp.energy() >= ex.energy() - 1e-9,
            "trial {trial}: DPA1D {} beat exact {}",
            dp.energy(),
            ex.energy()
        );
    }
}

/// No heuristic may beat the exhaustive solver on tiny 2x2 instances.
#[test]
fn no_heuristic_beats_exact_on_2x2() {
    let pf = Platform::paper(2, 2);
    let mut rng = ChaCha8Rng::seed_from_u64(31);
    for trial in 0..6 {
        let cfg = SpgGenConfig {
            n: 7,
            elevation: 1 + (trial % 3) as u32,
            ccr: Some(1.0),
            ..Default::default()
        };
        let g = spg::random_spg(&cfg, &mut rng);
        let Some(inst) = probe_instance(&Instance::new(g, pf.clone(), 1.0), trial) else {
            continue;
        };
        let Ok(opt) = solvers::Exact::default().solve(&inst, &SolveCtx::new(trial)) else {
            continue;
        };
        let report = Portfolio::heuristics().seeded(trial).run(&inst);
        for run in &report.runs {
            if let Ok(sol) = &run.result {
                assert!(
                    sol.energy() >= opt.energy() - 1e-9,
                    "{} ({}) beat exact ({}) on trial {trial}",
                    run.name,
                    sol.energy(),
                    opt.energy()
                );
            }
        }
    }
}

/// The full StreamIt suite must run end-to-end at original CCR on a 4x4
/// grid: the probe finds a period and at least one solver succeeds.
#[test]
fn streamit_suite_end_to_end() {
    let pf = Platform::paper(4, 4);
    for spec in &STREAMIT_SPECS {
        let g = streamit_workflow(spec, 2011);
        let inst = probe_instance(&Instance::new(g, pf.clone(), 1.0), 2011)
            .unwrap_or_else(|| panic!("{}: probe failed", spec.name));
        let report = Portfolio::heuristics().seeded(2011).run(&inst);
        assert!(
            report.best.is_some(),
            "{}: every solver failed at its own probed period",
            spec.name
        );
    }
}

/// For a *fixed* mapping, energy across two feasible periods differs by
/// exactly the leakage term `(|A|·P_leak + P_leak_comm)·ΔT` (§3.5) — the
/// dynamic parts depend only on the mapping. (Note the paper's model makes
/// total energy per data set *decrease* with a tighter period through the
/// leakage term, so "best energy monotone in T" would be a wrong
/// invariant.)
#[test]
fn fixed_mapping_energy_is_affine_in_period() {
    let pf = Platform::paper(4, 4);
    let g = spg::chain(&[1e8; 10], &[1e4; 9]);
    let inst = Instance::new(g, pf.clone(), 0.25);
    let sol = solvers::Greedy::default()
        .solve(&inst, &SolveCtx::new(0))
        .expect("feasible");
    let (t1, t2) = (0.25, 1.0);
    let e1 = evaluate(inst.spg(), &pf, &sol.mapping, t1).unwrap();
    let e2 = evaluate(inst.spg(), &pf, &sol.mapping, t2).unwrap();
    let expected_delta = (e1.active_cores as f64 * pf.power.p_leak + pf.p_leak_comm) * (t2 - t1);
    assert!(
        ((e2.energy - e1.energy) - expected_delta).abs() < 1e-12,
        "delta {} vs expected {}",
        e2.energy - e1.energy,
        expected_delta
    );
    assert_eq!(e1.active_cores, e2.active_cores);
    assert!((e1.compute_dynamic - e2.compute_dynamic).abs() < 1e-12);
    assert!((e1.comm_dynamic - e2.comm_dynamic).abs() < 1e-12);
}

/// The facade crate re-exports enough to run everything from one import.
#[test]
fn facade_prelude_suffices() {
    let app = spg::chain(&[1e8; 4], &[1e3; 3]);
    let inst = Instance::new(app, Platform::paper(2, 2), 1.0);
    let sol = solvers::Greedy::default()
        .solve(&inst, &SolveCtx::new(0))
        .unwrap();
    assert!(sol.energy() > 0.0);
    let m: &Mapping = &sol.mapping;
    assert_eq!(m.alloc.len(), 4);
    // Registry and portfolio are reachable from the prelude too.
    let reg = SolverRegistry::with_defaults();
    assert!(reg.get("greedy").is_some());
    assert!(Portfolio::heuristics().run(&inst).best.is_some());
}
