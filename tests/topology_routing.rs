//! Seeded property tests for the routing invariants across every topology
//! backend and routing policy (ISSUE 3):
//!
//! * every route is link-contiguous from `src` to `dst` and cycle-free;
//! * every hop uses a link the topology owns (dense-index round-trip);
//! * dimension-ordered routes are minimal (Manhattan length) on the mesh;
//! * torus routes are never longer than the corresponding mesh routes;
//! * precomputed route tables agree hop-for-hop with the route visitors.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use spg_cmp::prelude::*;

use cmp_platform::routing::validate_route;
use cmp_platform::{DirLink, TopoBackend};

fn platforms() -> Vec<Platform> {
    vec![
        Platform::paper(4, 4),
        Platform::paper(3, 5),
        Platform::paper(1, 6),
        Platform::paper_topology(TopologyKind::Torus, 4, 4),
        Platform::paper_topology(TopologyKind::Torus, 3, 5),
        Platform::paper_topology(TopologyKind::Torus, 2, 3),
        Platform::paper_topology(TopologyKind::Ring, 1, 7),
        Platform::paper_topology(TopologyKind::Ring, 1, 2),
    ]
}

fn random_core<R: Rng>(pf: &Platform, rng: &mut R) -> CoreId {
    CoreId::from_flat(rng.gen_range(0..pf.n_cores()), pf.q)
}

fn route_of(pf: &Platform, policy: RoutePolicy, a: CoreId, b: CoreId) -> Vec<DirLink> {
    let mut path = Vec::new();
    pf.route_visit(policy, a, b, |l| path.push(l));
    path
}

#[test]
fn routes_are_contiguous_and_on_topology_links() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xB0C);
    for pf in platforms() {
        for policy in RoutePolicy::ALL {
            for _ in 0..40 {
                let (a, b) = (random_core(&pf, &mut rng), random_core(&pf, &mut rng));
                let path = route_of(&pf, policy, a, b);
                validate_route(&pf, a, b, &path)
                    .unwrap_or_else(|e| panic!("{policy} on {}: {e}", pf.topology));
                for l in &path {
                    assert!(pf.has_link(l.from, l.to), "{policy}: foreign link {l:?}");
                    // Dense link indexing round-trips for every hop.
                    assert_eq!(pf.link_from_index(pf.link_index(*l)), Some(*l));
                }
                assert!(route_of(&pf, policy, a, a).is_empty());
            }
        }
    }
}

#[test]
fn dimension_ordered_routes_are_minimal_on_the_mesh() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xD1);
    for pf in [Platform::paper(4, 4), Platform::paper(5, 3)] {
        for _ in 0..60 {
            let (a, b) = (random_core(&pf, &mut rng), random_core(&pf, &mut rng));
            for policy in [RoutePolicy::Xy, RoutePolicy::Yx, RoutePolicy::Shortest] {
                assert_eq!(
                    route_of(&pf, policy, a, b).len() as u32,
                    a.manhattan(b),
                    "{policy} must be minimal on the mesh"
                );
            }
        }
    }
}

#[test]
fn torus_routes_never_longer_than_mesh_routes() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x70);
    for (p, q) in [(4, 4), (3, 5), (6, 6)] {
        let mesh = Platform::paper(p, q);
        let torus = Platform::paper_topology(TopologyKind::Torus, p, q);
        for _ in 0..60 {
            let (a, b) = (random_core(&mesh, &mut rng), random_core(&mesh, &mut rng));
            let mesh_len = route_of(&mesh, RoutePolicy::Xy, a, b).len();
            let torus_len = route_of(&torus, RoutePolicy::Shortest, a, b).len();
            assert!(
                torus_len <= mesh_len,
                "torus {torus_len} > mesh {mesh_len} hops for {a:?}->{b:?}"
            );
            // And the shortest route length is exactly the wrap-aware
            // distance.
            assert_eq!(torus_len as u32, torus.distance(a, b));
        }
    }
}

#[test]
fn shortest_is_exactly_xy_on_the_mesh() {
    let pf = Platform::paper(4, 5);
    for a in 0..pf.n_cores() {
        for b in 0..pf.n_cores() {
            let (ca, cb) = (CoreId::from_flat(a, pf.q), CoreId::from_flat(b, pf.q));
            assert_eq!(
                route_of(&pf, RoutePolicy::Shortest, ca, cb),
                route_of(&pf, RoutePolicy::Xy, ca, cb)
            );
        }
    }
}

#[test]
fn route_tables_match_visitors_on_all_backends() {
    for pf in platforms() {
        for policy in RoutePolicy::ALL {
            let table = RouteTable::build(&pf, policy);
            assert_eq!(table.n_cores(), pf.n_cores());
            for src in 0..pf.n_cores() {
                for dst in 0..pf.n_cores() {
                    let (a, b) = (CoreId::from_flat(src, pf.q), CoreId::from_flat(dst, pf.q));
                    let direct: Vec<u32> = route_of(&pf, policy, a, b)
                        .into_iter()
                        .map(|l| pf.link_index(l) as u32)
                        .collect();
                    assert_eq!(table.links_between(src, dst), direct.as_slice());
                    assert_eq!(table.hops(src, dst), direct.len());
                }
            }
        }
    }
}

#[test]
fn neighbour_iterator_agrees_with_links() {
    for pf in platforms() {
        let topo: TopoBackend = pf.topo();
        let mut n_links = 0usize;
        for c in pf.cores() {
            for n in pf.neighbours(c) {
                assert!(pf.has_link(c, n));
                n_links += 1;
            }
        }
        assert_eq!(n_links, pf.links().count(), "{:?}", topo);
    }
}

#[test]
fn mismatched_route_table_falls_back_to_route_generation() {
    // A 4x4-built table offered to a same-core-count 2x8 platform (and to
    // a same-shape torus) must be ignored, not silently mis-applied.
    let table = RouteTable::build(&Platform::paper(4, 4), RoutePolicy::Xy);
    assert!(!table.matches_platform(&Platform::paper(2, 8)));
    assert!(!table.matches_platform(&Platform::paper_topology(TopologyKind::Torus, 4, 4)));
    assert!(table.matches_platform(&Platform::paper(4, 4)));

    let pf = Platform::paper(2, 8);
    let g = spg::chain(&[1e8; 6], &[1e5; 5]);
    let inst = Instance::new(g.clone(), pf.clone(), 1.0);
    let sol = solvers::Greedy::default()
        .solve(&inst, &SolveCtx::new(0))
        .unwrap();
    let with_bad_table = evaluate_with(&g, &pf, &sol.mapping, 1.0, Some(&table)).unwrap();
    let plain = evaluate(&g, &pf, &sol.mapping, 1.0).unwrap();
    assert_eq!(with_bad_table.energy.to_bits(), plain.energy.to_bits());
    assert_eq!(
        with_bad_table.comm_dynamic.to_bits(),
        plain.comm_dynamic.to_bits()
    );
}

#[test]
#[should_panic(expected = "a ring platform needs p == 1")]
fn hand_rolled_ring_with_two_rows_fails_fast() {
    let pf = Platform {
        topology: TopologyKind::Ring,
        ..Platform::paper(4, 4)
    };
    // The first topology-dependent operation trips the assert instead of
    // silently mis-indexing links on an inconsistent coordinate system.
    let _ = pf.neighbours(CoreId { u: 0, v: 0 }).count();
}

#[test]
fn wrap_hops_validate_on_torus_but_not_on_mesh() {
    let torus = Platform::paper_topology(TopologyKind::Torus, 4, 4);
    let mesh = Platform::paper(4, 4);
    let a = CoreId { u: 0, v: 0 };
    let b = CoreId { u: 0, v: 3 };
    let wrap = vec![DirLink { from: a, to: b }];
    assert!(validate_route(&torus, a, b, &wrap).is_ok());
    assert!(validate_route(&mesh, a, b, &wrap).is_err());
}
