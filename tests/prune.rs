//! Dominance-pruning integration tests (ISSUE 8): the state-reduction
//! layer's correctness contract is that it is *invisible* in exact output
//! and *certified* when it is not exact.
//!
//! Pinned here:
//!
//! * dominance on/off produce bit-identical energies across the full
//!   StreamIt suite wherever the complete mode succeeds at all;
//! * a bounded skeleton built under the sweep's loosest period serves
//!   every tighter point with outcomes identical to from-scratch solves;
//! * a `frontier_cap`-truncated solve brackets the true optimum within
//!   its certified `bound_gap` instead of failing;
//! * the workloads whose complete transition systems overflow the 1M
//!   edge cap (BitonicSort tight, and a ≥256-stage generated SPG) finish
//!   a 16-point decade sweep with zero budget aborts.

use std::sync::Arc;

use cmp_platform::Platform;
use ea_bench::prune_xp::huge_workload;
use ea_core::solvers::Dpa1d;
use ea_core::sweep::PeriodSweep;
use ea_core::{Dpa1dConfig, Failure, Instance, SolveCtx, Solver};
use spg::{streamit_workflow, Spg, STREAMIT_SPECS};

const SEED: u64 = 2011;

fn dpa1d(dominance: bool) -> Dpa1d {
    Dpa1d {
        cfg: Dpa1dConfig {
            dominance,
            ..Dpa1dConfig::default()
        },
    }
}

/// The decade anchor used by every sweep artifact in this repository.
fn anchor(g: &Spg) -> f64 {
    2.0 * g.total_work() / (8.0 * 1e9)
}

#[test]
fn dominance_is_invisible_across_streamit() {
    let pf = Platform::paper(4, 4);
    let ctx = SolveCtx::new(SEED);
    let on = dpa1d(true);
    let off = dpa1d(false);
    let mut compared = 0usize;
    for spec in STREAMIT_SPECS.iter() {
        let g = streamit_workflow(spec, SEED);
        let hi = anchor(&g);
        for t in [hi, hi / 5.0] {
            let inst = Instance::new(g.clone(), pf.clone(), t);
            let pruned = on.solve(&inst, &ctx);
            match off.solve(&inst, &ctx) {
                Ok(complete) => {
                    // Wherever the complete relaxation finishes, pruning
                    // must be a pure optimisation: same energy, every bit.
                    let pruned = pruned.unwrap_or_else(|e| {
                        panic!("{}: pruned solve failed at T={t}: {e}", spec.name)
                    });
                    assert_eq!(
                        pruned.energy().to_bits(),
                        complete.energy().to_bits(),
                        "{}: dominance changed the energy at T={t}",
                        spec.name
                    );
                    assert_eq!(pruned.bound_gap(), 0.0, "uncapped frontiers are exact");
                    compared += 1;
                }
                Err(Failure::NoValidMapping(_)) => {
                    // A genuinely infeasible period stays infeasible:
                    // pruning never manufactures a mapping.
                    assert!(
                        matches!(pruned, Err(Failure::NoValidMapping(_))),
                        "{}: pruned outcome diverged on infeasible T={t}: {pruned:?}",
                        spec.name
                    );
                }
                // A budget abort is exactly what the dominance layer
                // exists to lift; the pruned side may succeed or prove
                // infeasibility, but must not abort on this suite.
                Err(Failure::TooExpensive(_)) => assert!(
                    !matches!(pruned, Err(Failure::TooExpensive(_)))
                        || inst.lattice(Dpa1dConfig::default().ideal_cap).is_err(),
                    "{}: pruned solve still aborted at T={t}",
                    spec.name
                ),
            }
        }
    }
    // Six Table 1 workflows solve exactly at their anchor on the 4×4
    // grid (five overflow the ideal cap before any transition is built,
    // and BitonicSort's complete transition system overflows the edge
    // cap — the abort arm above); the tight leg adds no exact pairs.
    assert!(compared >= 6, "suite must exercise the exact paths");
}

#[test]
fn bounded_skeleton_matches_from_scratch_at_every_point() {
    // The huge workload's complete transition system overflows the edge
    // cap, so the shared sweep instance runs on a bounded skeleton built
    // under the loosest period. Every point must still match a fresh
    // single-period instance bit for bit — outcome, energy, and prune
    // telemetry alike.
    let (name, g) = huge_workload(SEED);
    let pf = Platform::paper(4, 4);
    let hi = anchor(&g);
    let grid = PeriodSweep::geometric(hi, hi / 10.0, 6);
    let solvers: Vec<Arc<dyn Solver>> = vec![Arc::new(dpa1d(true))];

    let base = Instance::new(g.clone(), pf.clone(), hi);
    let report = PeriodSweep::over_periods(solvers.clone(), grid.clone())
        .seeded(SEED)
        .parallel(false)
        .run(&base);

    for (point, &t) in report.points.iter().zip(&grid) {
        let fresh = Instance::new(g.clone(), pf.clone(), t);
        let scratch = dpa1d(true).solve(&fresh, &SolveCtx::new(SEED));
        match (&point.runs[0].result, &scratch) {
            (Ok(a), Ok(b)) => {
                assert_eq!(
                    a.energy().to_bits(),
                    b.energy().to_bits(),
                    "{name}: swept energy diverged at T={t}"
                );
                assert_eq!(
                    a.prune, b.prune,
                    "{name}: prune telemetry diverged at T={t}"
                );
            }
            (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string()),
            (a, b) => panic!("{name}: outcome mismatch at T={t}: {a:?} vs {b:?}"),
        }
    }
}

#[test]
fn frontier_cap_certifies_a_bound_instead_of_failing() {
    // DES at its anchor is exactly solvable; a frontier cap of 1 keeps
    // only the cheapest state per (ideal, speed) row, so the solve is
    // truncated — it must still return a solution, carrying a certified
    // gap that brackets the true optimum.
    let spec = STREAMIT_SPECS.iter().find(|s| s.name == "DES").unwrap();
    let g = streamit_workflow(spec, SEED);
    let hi = anchor(&g);
    let inst = Instance::new(g, Platform::paper(4, 4), hi);
    let ctx = SolveCtx::new(SEED);

    let exact = dpa1d(true)
        .solve(&inst, &ctx)
        .expect("DES anchor is feasible");
    assert_eq!(exact.bound_gap(), 0.0);

    let capped = Dpa1d {
        cfg: Dpa1dConfig {
            dominance: true,
            frontier_cap: 1,
            ..Dpa1dConfig::default()
        },
    };
    let truncated = capped
        .solve(&inst, &ctx)
        .expect("a truncated frontier must degrade to a bounded solution, not fail");
    let gap = truncated.bound_gap();
    assert!(
        truncated.energy() >= exact.energy(),
        "truncation cannot beat the optimum"
    );
    assert!(
        truncated.energy() - gap <= exact.energy(),
        "true optimum {} must lie within the certified gap {gap} below {}",
        exact.energy(),
        truncated.energy()
    );
    let stats = truncated
        .prune
        .expect("truncated solves report prune stats");
    assert!(stats.frontier_max >= 1);
}

#[test]
fn huge_workloads_sweep_the_decade_under_the_edge_cap() {
    // The acceptance pin: BitonicSort and a ≥256-stage generated workload
    // complete a 16-point decade sweep under the default 1M edge cap with
    // zero budget aborts — every point either solves or proves infeasible.
    let bitonic = STREAMIT_SPECS
        .iter()
        .find(|s| s.name == "BitonicSort")
        .unwrap();
    let (huge_name, huge) = huge_workload(SEED);
    assert!(huge.n() >= 256);
    let targets = [
        ("BitonicSort".to_string(), streamit_workflow(bitonic, SEED)),
        (huge_name, huge),
    ];
    let pf = Platform::paper(4, 4);
    let solvers: Vec<Arc<dyn Solver>> = vec![Arc::new(dpa1d(true))];
    for (name, g) in targets {
        let hi = anchor(&g);
        let grid = PeriodSweep::geometric(hi, hi / 10.0, 16);
        let base = Instance::new(g, pf.clone(), hi);
        let report = PeriodSweep::over_periods(solvers.clone(), grid)
            .seeded(SEED)
            .parallel(false)
            .run(&base);
        let mut feasible = 0usize;
        for p in &report.points {
            match &p.runs[0].result {
                Ok(_) => feasible += 1,
                Err(Failure::NoValidMapping(_)) => {}
                Err(f @ Failure::TooExpensive(_)) => {
                    panic!("{name}: budget abort at T={}: {f}", p.period)
                }
            }
        }
        assert!(
            feasible >= 1,
            "{name}: the loose end of the decade must solve"
        );
    }
}
