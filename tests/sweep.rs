//! Period-sweep integration tests (ISSUE 5): the sweep subsystem's
//! correctness contract is *bit-identity* — sharing the lattice, the
//! transition skeleton, and the route tables across sweep points must be a
//! pure optimisation, invisible in every solver's output.
//!
//! Pinned here:
//!
//! * every sweep point's per-solver energies equal a fresh
//!   [`Instance::new`] portfolio solve at that period, to the last bit;
//! * `with_period` re-targets share one skeleton (`Arc::ptr_eq`);
//! * the parallel layered relaxation equals the sequential single-pass
//!   sweep on the StreamIt suite;
//! * admission is order-independent: descending and ascending period
//!   grids produce identical per-point outcomes.

use std::sync::Arc;

use cmp_platform::Platform;
use ea_core::solvers::{default_heuristics, Dpa1d};
use ea_core::sweep::PeriodSweep;
use ea_core::{Dpa1dConfig, Instance, Portfolio, SolveCtx, Solver};
use spg::{streamit_workflow, STREAMIT_SPECS};

const SEED: u64 = 2011;

/// Energy-or-failure signature of one portfolio/sweep outcome set.
fn energy_bits(runs: &[ea_core::SolveOutcome]) -> Vec<(String, Option<u64>)> {
    runs.iter()
        .map(|r| (r.name.clone(), r.energy().map(f64::to_bits)))
        .collect()
}

#[test]
fn sweep_points_match_independent_fresh_solves() {
    // A 6-point decade on two StreamIt workflows DPA1D handles plus one it
    // fails on (lattice cap — failure outcomes must match too).
    for wf in ["DES", "TDE", "FMRadio"] {
        let spec = STREAMIT_SPECS.iter().find(|s| s.name == wf).unwrap();
        let g = streamit_workflow(spec, SEED);
        let pf = Platform::paper(4, 4);
        let hi = 2.0 * g.total_work() / (8.0 * 1e9);
        let grid = PeriodSweep::geometric(hi, hi / 10.0, 6);

        let base = Instance::new(g.clone(), pf.clone(), hi);
        let report = PeriodSweep::over_periods(default_heuristics(), grid.clone())
            .seeded(SEED)
            .run(&base);

        for (point, &t) in report.points.iter().zip(&grid) {
            // The independent baseline: a brand-new instance, no shared
            // caches, same portfolio seed.
            let fresh = Instance::new(g.clone(), pf.clone(), t);
            let fresh_report = Portfolio::new(default_heuristics())
                .seeded(SEED)
                .parallel(false)
                .run(&fresh);
            assert_eq!(
                energy_bits(&point.runs),
                energy_bits(&fresh_report.runs),
                "{wf}: sweep point at T={t} diverged from a fresh solve"
            );
        }
    }
}

#[test]
fn skeleton_is_shared_across_with_period_retargets() {
    let spec = STREAMIT_SPECS.iter().find(|s| s.name == "DES").unwrap();
    let g = streamit_workflow(spec, SEED);
    let inst = Instance::new(g, Platform::paper(4, 4), 1.0);
    let cfg = Dpa1dConfig::default();
    let a = inst.transition_skeleton(&cfg).unwrap().unwrap();
    let b = inst
        .with_period(0.01)
        .transition_skeleton(&cfg)
        .unwrap()
        .unwrap();
    assert!(
        Arc::ptr_eq(&a, &b),
        "with_period must share the transition skeleton"
    );
    assert!(a.n_transitions() > 0);
    // A different edge cap large enough for the complete set reuses the
    // same skeleton: the cap binds the per-period admitted count, not the
    // index.
    let larger = Dpa1dConfig {
        edge_cap: 10 * cfg.edge_cap,
        ..cfg.clone()
    };
    let c = inst.transition_skeleton(&larger).unwrap().unwrap();
    assert!(Arc::ptr_eq(&a, &c));
}

#[test]
fn parallel_and_sequential_relaxation_agree_on_streamit() {
    // Force the by-destination parallel layered relaxation (threshold 0)
    // against the sequential single-pass sweep (threshold MAX) across the
    // suite, at a loose and a tight period each.
    let pf = Platform::paper(4, 4);
    let ctx = SolveCtx::new(SEED);
    let seq = Dpa1d {
        cfg: Dpa1dConfig {
            relax_par_threshold: usize::MAX,
            ..Default::default()
        },
    };
    let par = Dpa1d {
        cfg: Dpa1dConfig {
            relax_par_threshold: 0,
            ..Default::default()
        },
    };
    // Run the forced-parallel leg on an explicit 2-worker pool so the
    // comparison stays meaningful on single-core machines (with 1 worker
    // the solver falls back to the sequential order by design).
    let pool = rayon::ThreadPool::new(2);
    let mut compared = 0usize;
    for spec in STREAMIT_SPECS.iter() {
        let g = streamit_workflow(spec, SEED);
        let hi = 2.0 * g.total_work() / (8.0 * 1e9);
        for t in [hi, hi / 5.0] {
            let inst = Instance::new(g.clone(), pf.clone(), t);
            let a = seq.solve(&inst, &ctx);
            let b = pool.install(|| par.solve(&inst, &ctx));
            match (a, b) {
                (Ok(x), Ok(y)) => {
                    assert_eq!(
                        x.energy().to_bits(),
                        y.energy().to_bits(),
                        "{}: parallel relaxation diverged at T={t}",
                        spec.name
                    );
                    compared += 1;
                }
                (Err(x), Err(y)) => assert_eq!(x.to_string(), y.to_string()),
                (x, y) => panic!("{}: outcome mismatch {x:?} vs {y:?}", spec.name),
            }
        }
    }
    assert!(compared >= 6, "suite must exercise the skeleton paths");
}

#[test]
fn admission_is_direction_independent() {
    // A descending decade and its ascending reverse must produce the same
    // outcome at every period: admission is a pure threshold over the
    // skeleton, never stateful in the sweep order.
    let spec = STREAMIT_SPECS
        .iter()
        .find(|s| s.name == "MPEG2-noparser")
        .unwrap();
    let g = streamit_workflow(spec, SEED);
    let base = Instance::new(g, Platform::paper(4, 4), 1.0);
    let hi = 2.0 * base.spg().total_work() / (8.0 * 1e9);
    let descending = PeriodSweep::geometric(hi, hi / 10.0, 10);
    let mut ascending = descending.clone();
    ascending.reverse();

    let solvers: Vec<Arc<dyn Solver>> = vec![Arc::new(Dpa1d::default())];
    let down = PeriodSweep::over_periods(solvers.clone(), descending)
        .seeded(SEED)
        .parallel(false)
        .run(&base);
    let up = PeriodSweep::over_periods(solvers, ascending)
        .seeded(SEED)
        .parallel(false)
        .run(&base);

    type PointSig = (u64, Vec<(String, Option<u64>)>);
    let mut down_pts: Vec<PointSig> = down
        .points
        .iter()
        .map(|p| (p.period.to_bits(), energy_bits(&p.runs)))
        .collect();
    let mut up_pts: Vec<PointSig> = up
        .points
        .iter()
        .map(|p| (p.period.to_bits(), energy_bits(&p.runs)))
        .collect();
    down_pts.sort_by_key(|(t, _)| *t);
    up_pts.sort_by_key(|(t, _)| *t);
    assert_eq!(down_pts, up_pts, "sweep direction must not matter");
    // The feasibility count is monotone along the period axis: once a
    // point is feasible for DPA1D, every looser point in the grid is too
    // (the admitted transition set only grows with the period).
    let feasible: Vec<bool> = down_pts
        .iter()
        .map(|(_, runs)| runs[0].1.is_some())
        .collect();
    let first_feasible = feasible.iter().position(|&f| f);
    if let Some(i) = first_feasible {
        assert!(
            feasible[i..].iter().all(|&f| f),
            "feasibility must be monotone in the period: {feasible:?}"
        );
    }
}
