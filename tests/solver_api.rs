//! Tests for the solver-session API (`Instance` / `Solver` /
//! `SolverRegistry` / `Portfolio`): portfolio determinism across execution
//! modes, registry round-trips, and equivalence of every `Solver::solve`
//! against its legacy free function on the StreamIt suite.

use spg::{streamit_workflow, STREAMIT_SPECS};
use spg_cmp::prelude::*;

/// A period that is tight-but-feasible for a workload on an 8-core budget.
fn period_for(g: &Spg) -> f64 {
    g.total_work() / (8.0 * 1e9)
}

/// The per-solver comparison key used by the determinism tests: name, seed,
/// and energy-or-failure text (wall times legitimately vary between runs).
fn signature(report: &PortfolioReport) -> Vec<(String, u64, Result<f64, String>)> {
    report
        .runs
        .iter()
        .map(|r| {
            (
                r.name.clone(),
                r.seed,
                r.result
                    .as_ref()
                    .map(|s| s.energy())
                    .map_err(|e| e.to_string()),
            )
        })
        .collect()
}

/// Same seed ⇒ identical `PortfolioReport` (energies, failures, seeds, and
/// winner), whether the portfolio fans out over rayon or runs on one
/// thread, across the whole StreamIt suite.
#[test]
fn portfolio_is_deterministic_across_thread_modes() {
    let pf = Platform::paper(4, 4);
    for spec in STREAMIT_SPECS.iter().take(6) {
        let g = streamit_workflow(spec, 2011);
        let t = period_for(&g);
        let inst = Instance::new(g, pf.clone(), t);
        let par = Portfolio::heuristics().seeded(2011).run(&inst);
        let seq = Portfolio::heuristics()
            .seeded(2011)
            .parallel(false)
            .run(&inst);
        assert_eq!(
            signature(&par),
            signature(&seq),
            "{}: parallel vs sequential reports diverge",
            spec.name
        );
        assert_eq!(par.best, seq.best, "{}: winners diverge", spec.name);
        // And a rerun in the same mode reproduces exactly.
        let again = Portfolio::heuristics().seeded(2011).run(&inst);
        assert_eq!(signature(&par), signature(&again));
    }
}

/// Registry round-trip: every registered name resolves to a solver whose
/// `name()` is the key, case-insensitively, including through the
/// `refined:` combinator prefix.
#[test]
fn registry_roundtrip() {
    let reg = SolverRegistry::with_defaults();
    let names = reg.names();
    assert_eq!(
        names,
        ["Random", "Greedy", "DPA2D", "DPA1D", "DPA2D1D", "Exact"]
    );
    for name in names {
        assert_eq!(reg.get(name).unwrap().name(), name);
        assert_eq!(reg.get(&name.to_lowercase()).unwrap().name(), name);
        let refined = reg.get(&format!("refined:{name}")).unwrap();
        assert_eq!(refined.name(), format!("Refined({name})"));
    }
    assert!(reg.get("no-such-solver").is_none());
}

/// Each `Solver::solve` agrees with its legacy free function on the
/// StreamIt suite: identical energies on success, failure on both sides
/// otherwise (the shared-lattice and speed-floor optimisations must be
/// behaviour-preserving).
#[test]
fn solvers_equal_legacy_free_functions_on_streamit() {
    #![allow(deprecated)]
    let pf = Platform::paper(4, 4);
    // A mix of low-elevation (DPA1D-tractable) and high-elevation
    // (DPA1D-failing) workflows.
    for idx in [1usize, 6, 7, 8, 9, 12] {
        let spec = &STREAMIT_SPECS[idx - 1];
        let g = streamit_workflow(spec, 2011);
        let t = period_for(&g);
        let inst = Instance::new(g.clone(), pf.clone(), t);
        let ctx = SolveCtx::new(2011);
        type Case<'a> = (
            &'a str,
            Result<Solution, Failure>,
            Result<Solution, Failure>,
        );
        let cases: Vec<Case> = vec![
            (
                "Random",
                solvers::Random::default().solve(&inst, &ctx),
                random_heuristic(&g, &pf, t, 2011),
            ),
            (
                "Greedy",
                solvers::Greedy::default().solve(&inst, &ctx),
                greedy(&g, &pf, t),
            ),
            (
                "DPA2D",
                solvers::Dpa2d.solve(&inst, &ctx),
                dpa2d(&g, &pf, t),
            ),
            (
                "DPA1D",
                solvers::Dpa1d::default().solve(&inst, &ctx),
                dpa1d(&g, &pf, t, &Dpa1dConfig::default()),
            ),
            (
                "DPA2D1D",
                solvers::Dpa2d1d.solve(&inst, &ctx),
                dpa2d1d(&g, &pf, t),
            ),
        ];
        for (name, new, old) in cases {
            match (new, old) {
                (Ok(a), Ok(b)) => assert_eq!(
                    a.energy(),
                    b.energy(),
                    "{}/{name}: solver energy diverges from legacy",
                    spec.name
                ),
                (Err(_), Err(_)) => {}
                (a, b) => panic!(
                    "{}/{name}: feasibility diverges (solver ok={}, legacy ok={})",
                    spec.name,
                    a.is_ok(),
                    b.is_ok()
                ),
            }
        }
    }
}

/// `run_heuristic` (the deprecated shim) routes through the same solvers.
#[test]
#[allow(deprecated)]
fn run_heuristic_shim_matches_solver() {
    let pf = Platform::paper(2, 2);
    let g = spg::chain(&[2e8; 6], &[1e4; 5]);
    let t = 0.5;
    let inst = Instance::new(g.clone(), pf.clone(), t);
    for kind in ALL_HEURISTICS {
        let via_shim = run_heuristic(kind, &g, &pf, t, 5);
        let via_solver = kind.solver().solve(&inst, &SolveCtx::new(5));
        match (via_shim, via_solver) {
            (Ok(a), Ok(b)) => assert_eq!(a.energy(), b.energy(), "{kind}"),
            (Err(_), Err(_)) => {}
            (a, b) => panic!(
                "{kind}: shim/solver disagree ({} vs {})",
                a.is_ok(),
                b.is_ok()
            ),
        }
    }
}

/// The probed instance reuses its caches and the portfolio wins with a
/// finite, NaN-safe best energy.
#[test]
fn probe_portfolio_pipeline() {
    let g = spg::chain(&[1e8; 6], &[1e4; 5]);
    let base = Instance::new(g, Platform::paper(2, 2), 1.0);
    let inst = ea_bench::probe_instance(&base, 3).expect("feasible chain");
    let report = Portfolio::heuristics().seeded(3).run(&inst);
    let best = report.best_energy().expect("some solver succeeds");
    assert!(best.is_finite() && best > 0.0);
    // The winner really is the minimum over the successful runs.
    let min = report
        .runs
        .iter()
        .filter_map(|r| r.energy())
        .min_by(|a, b| a.total_cmp(b))
        .unwrap();
    assert_eq!(best, min);
}
