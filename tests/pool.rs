//! Worker-pool determinism tests (persistent work-stealing shim): solver
//! outputs must depend only on `(instance, solver set, seed)` — never on
//! how many workers the pool has or how stealing interleaves the jobs.
//!
//! Every pinned comparison runs the *same* portfolio/sweep on explicit
//! 1-, 2-, and 4-worker pools ([`rayon::ThreadPool::install`]) and
//! demands bit-identical energies. The 1-worker leg doubles as the
//! sequential-fallback check: `Portfolio`, `PeriodSweep`, and the DPA1D
//! relaxation all skip their fan-outs outright when
//! [`rayon::current_num_threads`] is 1, so agreement here proves the
//! fallback and the parallel path compute the same thing.

use cmp_platform::Platform;
use ea_core::solvers::default_heuristics;
use ea_core::{Instance, PeriodSweep, Portfolio};
use spg::{streamit_workflow, STREAMIT_SPECS};

const SEED: u64 = 2011;

/// Energy-or-failure signature of one outcome set.
fn energy_bits(runs: &[ea_core::SolveOutcome]) -> Vec<(String, Option<u64>)> {
    runs.iter()
        .map(|r| (r.name.clone(), r.energy().map(f64::to_bits)))
        .collect()
}

fn des_instance() -> Instance {
    let spec = STREAMIT_SPECS.iter().find(|s| s.name == "DES").unwrap();
    let g = streamit_workflow(spec, SEED);
    let hi = 2.0 * g.total_work() / (8.0 * 1e9);
    Instance::new(g, Platform::paper(4, 4), hi)
}

#[test]
fn portfolio_is_deterministic_across_worker_counts() {
    let inst = des_instance();
    let run_with = |workers: usize| {
        let pool = rayon::ThreadPool::new(workers);
        pool.install(|| {
            let report = Portfolio::new(default_heuristics()).seeded(SEED).run(&inst);
            energy_bits(&report.runs)
        })
    };
    let one = run_with(1);
    assert!(one.iter().any(|(_, e)| e.is_some()), "nothing solved");
    assert_eq!(one, run_with(2), "2-worker portfolio diverged");
    assert_eq!(one, run_with(4), "4-worker portfolio diverged");
}

#[test]
fn sweep_is_deterministic_across_worker_counts() {
    let inst = des_instance();
    let grid = PeriodSweep::geometric(inst.period(), inst.period() / 8.0, 5);
    let run_with = |workers: usize| {
        let pool = rayon::ThreadPool::new(workers);
        pool.install(|| {
            let report = PeriodSweep::over_periods(default_heuristics(), grid.clone())
                .seeded(SEED)
                .run(&inst);
            report
                .points
                .iter()
                .map(|p| (p.period.to_bits(), energy_bits(&p.runs)))
                .collect::<Vec<_>>()
        })
    };
    let one = run_with(1);
    assert_eq!(one.len(), 5);
    assert_eq!(one, run_with(2), "2-worker sweep diverged");
    assert_eq!(one, run_with(4), "4-worker sweep diverged");
}

#[test]
fn nested_sweep_inside_installed_pool_completes() {
    // A sweep fans out over points, and each point's DPA1D relaxation may
    // fan out again from inside a worker — the nested case the persistent
    // pool must run inline without deadlock or oversubscription.
    let inst = des_instance();
    let grid = PeriodSweep::geometric(inst.period(), inst.period() / 4.0, 4);
    let pool = rayon::ThreadPool::new(2);
    let report = pool.install(|| {
        PeriodSweep::over_periods(default_heuristics(), grid)
            .seeded(SEED)
            .run(&inst)
    });
    assert_eq!(report.points.len(), 4);
    // Every point must have been solved (feasibly or not — the tightest
    // periods are legitimately infeasible); the loosest point must be
    // feasible so the relaxation actually ran.
    for p in &report.points {
        assert!(!p.runs.is_empty(), "point at T={} ran no solvers", p.period);
    }
    assert!(
        report.points[0].runs.iter().any(|r| r.energy().is_some()),
        "loosest point must be feasible"
    );
}
