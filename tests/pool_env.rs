//! Global-pool sizing contract: `RAYON_NUM_THREADS` must be honoured and
//! [`rayon::current_num_threads`] must report the real worker count.
//!
//! Kept in its own integration-test binary on purpose: the global
//! registry reads the environment exactly once, on first use, so this
//! must be the *only* test in the process that touches it (other tests
//! route everything through explicit `ThreadPool::install`s).

#[test]
fn global_pool_honours_rayon_num_threads() {
    // Under the CI thread-count matrix the variable is already set;
    // otherwise pin a value ourselves before the first global-pool use.
    let expected = match std::env::var("RAYON_NUM_THREADS") {
        Ok(v) => v.parse::<usize>().expect("matrix sets a positive integer"),
        Err(_) => {
            std::env::set_var("RAYON_NUM_THREADS", "3");
            3
        }
    };
    assert_eq!(rayon::current_num_threads(), expected);
}
