//! Markdown link checker: every intra-repo link in `docs/*.md` and
//! `README.md` must resolve to an existing file. Dead documentation
//! links fail the build (CI runs this with the rest of the test suite).

use std::path::PathBuf;

/// Extracts inline markdown link targets `[text](target)` from one line.
/// Good enough for this repo's docs: no nested parens in targets, no
/// reference-style links.
fn link_targets(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b']' && i + 1 < bytes.len() && bytes[i + 1] == b'(' {
            if let Some(end) = line[i + 2..].find(')') {
                out.push(line[i + 2..i + 2 + end].to_string());
                i += 2 + end;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Whether a target is an intra-repo file link this test should resolve.
fn checkable(target: &str) -> Option<&str> {
    if target.starts_with("http://")
        || target.starts_with("https://")
        || target.starts_with("mailto:")
        || target.starts_with('#')
        || target.is_empty()
    {
        return None;
    }
    // Strip a fragment (`file.md#section`): only the file part must exist.
    Some(target.split('#').next().unwrap_or(target))
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn doc_files() -> Vec<PathBuf> {
    let root = repo_root();
    let mut files = vec![root.join("README.md")];
    let docs = root.join("docs");
    let entries = std::fs::read_dir(&docs).expect("docs/ directory exists");
    for entry in entries {
        let path = entry.expect("readable docs/ entry").path();
        if path.extension().is_some_and(|e| e == "md") {
            files.push(path);
        }
    }
    files.sort();
    files
}

#[test]
fn intra_repo_doc_links_resolve() {
    let mut checked = 0usize;
    let mut dead = Vec::new();
    for file in doc_files() {
        let text = std::fs::read_to_string(&file)
            .unwrap_or_else(|e| panic!("reading {}: {e}", file.display()));
        let base = file.parent().expect("doc file has a parent directory");
        let mut in_code_fence = false;
        for (ln, line) in text.lines().enumerate() {
            if line.trim_start().starts_with("```") {
                in_code_fence = !in_code_fence;
                continue;
            }
            if in_code_fence {
                continue;
            }
            for target in link_targets(line) {
                let Some(rel) = checkable(&target) else {
                    continue;
                };
                checked += 1;
                if !base.join(rel).exists() {
                    dead.push(format!("{}:{}: {target}", file.display(), ln + 1));
                }
            }
        }
    }
    assert!(
        checked >= 5,
        "expected to find at least a handful of intra-repo links, found {checked} — \
         did the extractor break?"
    );
    assert!(
        dead.is_empty(),
        "dead intra-repo documentation links:\n{}",
        dead.join("\n")
    );
}

#[test]
fn docs_directory_has_the_expected_pages() {
    let names: Vec<String> = doc_files()
        .iter()
        .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
        .collect();
    for required in [
        "README.md",
        "architecture.md",
        "fault-model.md",
        "serve-protocol.md",
    ] {
        assert!(
            names.iter().any(|n| n == required),
            "documentation page {required} is missing (have: {names:?})"
        );
    }
}

#[test]
fn link_extractor_handles_the_shapes_we_use() {
    assert_eq!(
        link_targets("see [a](x.md) and [b](y.md#frag)"),
        vec!["x.md", "y.md#frag"]
    );
    assert_eq!(checkable("https://example.com"), None);
    assert_eq!(checkable("#anchor"), None);
    assert_eq!(checkable("docs/x.md#frag"), Some("docs/x.md"));
}
