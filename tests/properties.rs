//! Randomized property tests on the core data structures and invariants,
//! spanning all crates. Each property runs over a deterministic family of
//! seeded random cases (no external property-testing framework: the
//! workspace builds offline, and seeded ChaCha draws give reproducible
//! failures — the failing seed is in the assertion message).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use spg::ideal::{enumerate_ideals, is_ideal, ready_stages};
use spg::{NodeSet, Spg};
use spg_cmp::prelude::*;

const CASES: u64 = 48;

/// One random SPG per case seed, sweeping size, elevation and CCR.
fn arb_spg(case: u64) -> Spg {
    let mut rng = ChaCha8Rng::seed_from_u64(0x05b6_0000 + case);
    let n = rng.gen_range(6usize..40);
    let e = rng
        .gen_range(1u32..8)
        .min(n.saturating_sub(2).max(1) as u32);
    let cfg = SpgGenConfig {
        n,
        elevation: e,
        ccr: Some([10.0, 1.0, 0.1][case as usize % 3]),
        ..Default::default()
    };
    spg::random_spg(&cfg, &mut rng)
}

/// Every generated SPG satisfies the structural invariants of §3.1:
/// unique source/sink, unique labels, x-monotone edges.
#[test]
fn generated_spgs_are_well_formed() {
    for case in 0..CASES {
        let g = arb_spg(case);
        assert!(g.check_invariants().is_ok(), "case {case}");
    }
}

/// Labels define the virtual grid: at most one stage per (x, y), and the
/// elevation / depth maxima are attained.
#[test]
fn labels_unique() {
    for case in 0..CASES {
        let g = arb_spg(case);
        let mut seen = std::collections::HashSet::new();
        for l in g.labels() {
            assert!(seen.insert((l.x, l.y)), "case {case}: duplicate label");
        }
        assert!(
            g.labels().iter().any(|l| l.y == g.elevation()),
            "case {case}"
        );
        assert!(g.labels().iter().any(|l| l.x == g.xmax()), "case {case}");
    }
}

/// The ideal lattice is downward-closed and bounded by Theorem 1's n^ymax
/// count.
#[test]
fn ideal_lattice_properties() {
    for case in 0..CASES {
        let g = arb_spg(case);
        let cap = 20_000usize;
        let Ok(lat) = enumerate_ideals(&g, cap) else {
            continue;
        };
        // Theorem 1's bound (loose, but must hold).
        let bound = (g.n() as f64).powi(g.elevation() as i32) + 2.0;
        assert!(
            (lat.len() as f64) <= bound + 1.0,
            "case {case}: lattice {} exceeds n^ymax bound {}",
            lat.len(),
            bound
        );
        // Spot-check idealness of a sample.
        for ideal in lat.iter().step_by(1 + lat.len() / 50) {
            assert!(is_ideal(&g, ideal), "case {case}");
        }
        // Ready stages of the empty ideal = the source.
        let empty = NodeSet::new(g.n());
        let ready = ready_stages(&g, empty.as_set());
        assert_eq!(ready, vec![g.source()], "case {case}");
    }
}

/// The interned arena lattice enumerates exactly the same ideal family as
/// a naive reference (owned `NodeSet`s in a `HashSet`, cloning per
/// candidate — the pre-refactor algorithm) on small random SPGs, with no
/// duplicate arena entries.
#[test]
fn interned_lattice_matches_naive_reference() {
    use std::collections::{BTreeSet, HashSet};

    fn naive_ideals(g: &Spg) -> BTreeSet<Vec<usize>> {
        let mut seen: HashSet<NodeSet> = HashSet::new();
        let empty = NodeSet::new(g.n());
        let mut queue = vec![empty.clone()];
        seen.insert(empty);
        while let Some(cur) = queue.pop() {
            for s in ready_stages(g, cur.as_set()) {
                let mut next = cur.clone();
                next.insert(s.idx());
                if seen.insert(next.clone()) {
                    queue.push(next);
                }
            }
        }
        seen.into_iter().map(|s| s.iter().collect()).collect()
    }

    for case in 0..CASES {
        let mut rng = ChaCha8Rng::seed_from_u64(0x1d3a_0000 + case);
        let n = rng.gen_range(4usize..16);
        let g = spg::generate::random_spg_free(n, &mut rng);
        let lat = enumerate_ideals(&g, 1_000_000).unwrap();
        let interned: BTreeSet<Vec<usize>> = lat.iter().map(|s| s.iter().collect()).collect();
        assert_eq!(
            lat.len(),
            interned.len(),
            "case {case}: duplicate ideals in the arena"
        );
        assert_eq!(interned, naive_ideals(&g), "case {case}");
    }
}

/// CCR rescaling hits the target exactly and leaves weights untouched.
#[test]
fn ccr_scaling_exact() {
    for case in 0..CASES {
        let mut g = arb_spg(case);
        let mut rng = ChaCha8Rng::seed_from_u64(0x0cc2_0000 + case);
        let target = rng.gen_range(0.05f64..100.0);
        let work = g.total_work();
        g.scale_to_ccr(target);
        assert!((g.ccr() - target).abs() / target < 1e-6, "case {case}");
        assert!((g.total_work() - work).abs() < 1e-6 * work, "case {case}");
    }
}

/// Every heuristic's accepted solution is a valid DAG-partition mapping
/// meeting the period, and no heuristic's reported energy disagrees with
/// the evaluator.
#[test]
fn heuristics_produce_valid_mappings() {
    for case in 0..CASES / 2 {
        let g = arb_spg(case);
        let seed = 0x09e1_0000 + case;
        let pf = Platform::paper(3, 3);
        // A fixed, reasonably tight period per instance: total work over
        // 4 cores at top speed.
        let t = g.total_work() / (4.0 * 1e9);
        let inst = Instance::new(g.clone(), pf.clone(), t);
        let report = Portfolio::heuristics().seeded(seed).run(&inst);
        for run in &report.runs {
            let name = &run.name;
            if let Ok(sol) = &run.result {
                let ev = evaluate(&g, &pf, &sol.mapping, t);
                assert!(ev.is_ok(), "case {case}: {name} invalid: {:?}", ev.err());
                let ev = ev.unwrap();
                assert!(
                    (ev.energy - sol.energy()).abs() <= 1e-9 * ev.energy,
                    "case {case}: {name} energy drift"
                );
                assert!(ev.max_cycle_time <= t * (1.0 + 1e-6), "case {case}: {name}");
            }
        }
    }
}

/// Snake and XY routes always have well-formed, cycle-free paths of the
/// expected lengths.
#[test]
fn routes_well_formed() {
    use cmp_platform::routing::{snake_core, snake_route, validate_route, xy_route};
    let mut rng = ChaCha8Rng::seed_from_u64(0x0020_77e5);
    for case in 0..CASES {
        let p = rng.gen_range(1u32..6);
        let q = rng.gen_range(1u32..6);
        let pf = Platform::paper(p, q);
        let r = pf.n_cores();
        let a = rng.gen_range(0usize..36) % r;
        let b = rng.gen_range(0usize..36) % r;
        let (ca, cb) = (snake_core(&pf, a), snake_core(&pf, b));
        let path = snake_route(&pf, a, b);
        assert_eq!(path.len(), a.abs_diff(b), "case {case}");
        assert!(validate_route(&pf, ca, cb, &path).is_ok(), "case {case}");
        for order in [RouteOrder::RowFirst, RouteOrder::ColFirst] {
            let path = xy_route(ca, cb, order);
            assert_eq!(path.len() as u32, ca.manhattan(cb), "case {case}");
            assert!(validate_route(&pf, ca, cb, &path).is_ok(), "case {case}");
        }
    }
}

/// Speed-selection invariants: `min_speed_for` returns the slowest feasible
/// speed; `best_speed_for` is the energy-optimal feasible speed. (They
/// differ on the XScale table — its P(s)/s is not monotone at the low end —
/// which is why the paper's minimum-speed rule is kept as a *faithfulness*
/// choice, not an optimality one.)
#[test]
fn speed_selection_invariants() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x005b_eed5);
    let pm = cmp_platform::PowerModel::xscale();
    for case in 0..CASES * 4 {
        let work = rng.gen_range(1e6f64..2e9);
        let t = rng.gen_range(1e-3f64..2.0);
        let Some(k) = pm.min_speed_for(work, t) else {
            continue;
        };
        // Slowest feasible: every slower speed is infeasible, k is feasible.
        assert!(work / pm.speed(k).freq <= t * (1.0 + 1e-9), "case {case}");
        for slower in 0..k {
            assert!(work / pm.speed(slower).freq > t, "case {case}");
        }
        // best_speed_for minimises energy among feasible speeds.
        let opt = pm.best_speed_for(work, t).unwrap();
        let best = pm.compute_energy(work, opt, t);
        for other in k..pm.m() {
            assert!(
                pm.compute_energy(work, other, t) >= best - 1e-12,
                "case {case}"
            );
        }
    }
}
