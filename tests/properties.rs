//! Property-based tests (proptest) on the core data structures and
//! invariants, spanning all crates.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spg_cmp::prelude::*;
use spg::ideal::{enumerate_ideals, is_ideal, ready_stages};
use spg::{NodeSet, Spg};

fn arb_spg() -> impl Strategy<Value = Spg> {
    // (n, elevation budget, seed, ccr index) -> generated SPG
    (6usize..40, 1u32..8, any::<u64>(), 0usize..3).prop_map(|(n, e, seed, ci)| {
        let e = e.min(n.saturating_sub(2).max(1) as u32);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let cfg = SpgGenConfig {
            n,
            elevation: e,
            ccr: Some([10.0, 1.0, 0.1][ci]),
            ..Default::default()
        };
        spg::random_spg(&cfg, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every generated SPG satisfies the structural invariants of §3.1:
    /// unique source/sink, unique labels, x-monotone edges.
    #[test]
    fn generated_spgs_are_well_formed(g in arb_spg()) {
        prop_assert!(g.check_invariants().is_ok());
    }

    /// Labels define the virtual grid: at most one stage per (x, y).
    #[test]
    fn labels_unique(g in arb_spg()) {
        let mut seen = std::collections::HashSet::new();
        for l in g.labels() {
            prop_assert!(seen.insert((l.x, l.y)));
        }
        // Elevation and depth are attained.
        prop_assert!(g.labels().iter().any(|l| l.y == g.elevation()));
        prop_assert!(g.labels().iter().any(|l| l.x == g.xmax()));
    }

    /// The ideal lattice is downward-closed and bounded by Theorem 1's
    /// n^ymax count.
    #[test]
    fn ideal_lattice_properties(g in arb_spg()) {
        let cap = 20_000usize;
        if let Ok(lat) = enumerate_ideals(&g, cap) {
            // Theorem 1's bound (loose, but must hold).
            let bound = (g.n() as f64).powi(g.elevation() as i32) + 2.0;
            prop_assert!((lat.len() as f64) <= bound + 1.0,
                "lattice {} exceeds n^ymax bound {}", lat.len(), bound);
            // Spot-check idealness of a sample.
            for ideal in lat.ideals.iter().step_by(1 + lat.len() / 50) {
                prop_assert!(is_ideal(&g, ideal));
            }
            // Ready stages of the empty ideal = the source.
            let ready = ready_stages(&g, &NodeSet::new(g.n()));
            prop_assert_eq!(ready, vec![g.source()]);
        }
    }

    /// CCR rescaling hits the target exactly and leaves weights untouched.
    #[test]
    fn ccr_scaling_exact(mut g in arb_spg(), target in 0.05f64..100.0) {
        let work = g.total_work();
        g.scale_to_ccr(target);
        prop_assert!((g.ccr() - target).abs() / target < 1e-6);
        prop_assert!((g.total_work() - work).abs() < 1e-6 * work);
    }

    /// Every heuristic's accepted solution is a valid DAG-partition mapping
    /// meeting the period, and no heuristic's reported energy disagrees
    /// with the evaluator.
    #[test]
    fn heuristics_produce_valid_mappings(g in arb_spg(), seed in any::<u64>()) {
        let pf = Platform::paper(3, 3);
        // A fixed, reasonably tight period per instance: total work over
        // 4 cores at top speed.
        let t = g.total_work() / (4.0 * 1e9);
        for kind in ALL_HEURISTICS {
            if let Ok(sol) = run_heuristic(kind, &g, &pf, t, seed) {
                let ev = evaluate(&g, &pf, &sol.mapping, t);
                prop_assert!(ev.is_ok(), "{} invalid: {:?}", kind, ev.err());
                let ev = ev.unwrap();
                prop_assert!((ev.energy - sol.energy()).abs() <= 1e-9 * ev.energy);
                prop_assert!(ev.max_cycle_time <= t * (1.0 + 1e-6));
            }
        }
    }

    /// Snake and XY routes always have well-formed, cycle-free paths of
    /// the expected lengths.
    #[test]
    fn routes_well_formed(p in 1u32..6, q in 1u32..6,
                          a in 0usize..36, b in 0usize..36) {
        let pf = Platform::paper(p, q);
        let r = pf.n_cores();
        let (a, b) = (a % r, b % r);
        use cmp_platform::routing::{snake_core, snake_route, validate_route, xy_route};
        let (ca, cb) = (snake_core(&pf, a), snake_core(&pf, b));
        let path = snake_route(&pf, a, b);
        prop_assert_eq!(path.len(), a.abs_diff(b));
        prop_assert!(validate_route(&pf, ca, cb, &path).is_ok());
        for order in [RouteOrder::RowFirst, RouteOrder::ColFirst] {
            let path = xy_route(ca, cb, order);
            prop_assert_eq!(path.len() as u32, ca.manhattan(cb));
            prop_assert!(validate_route(&pf, ca, cb, &path).is_ok());
        }
    }

    /// Speed-selection invariants: `min_speed_for` returns the slowest
    /// feasible speed; `best_speed_for` is the energy-optimal feasible
    /// speed. (They differ on the XScale table — its P(s)/s is not
    /// monotone at the low end — which is why the paper's minimum-speed
    /// rule is kept as a *faithfulness* choice, not an optimality one.)
    #[test]
    fn speed_selection_invariants(work in 1e6f64..2e9, t in 1e-3f64..2.0) {
        let pm = cmp_platform::PowerModel::xscale();
        if let Some(k) = pm.min_speed_for(work, t) {
            // Slowest feasible: every slower speed is infeasible, k is
            // feasible.
            prop_assert!(work / pm.speed(k).freq <= t * (1.0 + 1e-9));
            for slower in 0..k {
                prop_assert!(work / pm.speed(slower).freq > t);
            }
            // best_speed_for minimises energy among feasible speeds.
            let opt = pm.best_speed_for(work, t).unwrap();
            let best = pm.compute_energy(work, opt, t);
            for other in k..pm.m() {
                prop_assert!(pm.compute_energy(work, other, t) >= best - 1e-12);
            }
        }
    }
}
